package obs

import (
	"fmt"
	"sync"

	"odbgc/internal/simerr"
)

// Metric names the Live observer maintains.
const (
	MetricEvents           = "odbgc_sim_events_total"
	MetricCollections      = "odbgc_sim_collections_total"
	MetricDecisions        = "odbgc_sim_decisions_total"
	MetricReclaimed        = "odbgc_sim_reclaimed_bytes_total"
	MetricFaults           = "odbgc_sim_faults_injected_total"
	MetricCheckpoints      = "odbgc_sim_checkpoints_total"
	MetricPhases           = "odbgc_sim_phase_transitions_total"
	MetricDBBytes          = "odbgc_sim_database_bytes"
	MetricGarbageBytes     = "odbgc_sim_garbage_bytes"
	MetricGarbageFrac      = "odbgc_sim_garbage_fraction"
	MetricEstimatedFrac    = "odbgc_sim_estimated_garbage_fraction"
	MetricTargetFrac       = "odbgc_sim_target_garbage_fraction"
	MetricGCIOFrac         = "odbgc_sim_gc_io_fraction"
	MetricAppIO            = "odbgc_sim_app_io_ops"
	MetricGCIO             = "odbgc_sim_gc_io_ops"
	MetricIntervalHist     = "odbgc_sim_collection_interval_overwrites"
	MetricYieldHist        = "odbgc_sim_collection_yield_bytes"
	MetricCollectionIOHist = "odbgc_sim_collection_io_ops"
	MetricDraining         = "odbgc_sim_draining"
	MetricRunFailures      = "odbgc_sim_run_failures_total"
)

// RunFailureMetric is the per-class failure counter name for a simerr class.
// The registry has no label support, so each class gets its own flat metric:
// odbgc_sim_run_failures_<class>_total.
func RunFailureMetric(class simerr.Class) string {
	return fmt.Sprintf("odbgc_sim_run_failures_%s_total", class)
}

// Status is the run-status document the HTTP endpoint serves: live progress
// in simulated time, updated by the Live observer as events arrive.
type Status struct {
	Running     bool   `json:"running"`
	Policy      string `json:"policy"`
	Selection   string `json:"selection"`
	Phase       string `json:"phase"`
	Step        int    `json:"events_consumed"`
	Collections int    `json:"collections"`
	Clock       Clock  `json:"clock"`
	// AchievedGarbageFrac and TargetGarbageFrac compare the controller's
	// achieved garbage share against its target as of the last collection.
	AchievedGarbageFrac Float `json:"achieved_garbage_frac"`
	TargetGarbageFrac   Float `json:"target_garbage_frac"`
	// AchievedGCIOFrac is cumulative collector I/O over total I/O.
	AchievedGCIOFrac Float  `json:"achieved_gc_io_frac"`
	ReclaimedBytes   uint64 `json:"reclaimed_bytes"`
	FaultsInjected   uint64 `json:"faults_injected"`
	// Draining is true once graceful shutdown has begun: no new work is
	// scheduled and in-flight runs are finishing.
	Draining bool `json:"draining"`
	// Final is set once the run has ended.
	Final *RunEnd `json:"final,omitempty"`
}

// Live is an Observer that folds events into a metrics Registry and a
// queryable Status snapshot — the backing store for the /metrics and
// /statusz HTTP endpoints. All methods lock, so a scraper may read while
// the simulation writes.
type Live struct {
	reg *Registry

	mu       sync.Mutex
	st       Status
	lastStep int // high-water mark backing the events counter
}

// NewLive builds a Live observer over a fresh registry with the standard
// simulator metrics registered.
func NewLive() *Live {
	reg := NewRegistry()
	counters := []struct{ name, help string }{
		{MetricEvents, "application trace events consumed"},
		{MetricCollections, "garbage collections completed"},
		{MetricDecisions, "policy decisions (collection attempts) taken"},
		{MetricReclaimed, "bytes reclaimed by the collector"},
		{MetricFaults, "storage faults injected"},
		{MetricCheckpoints, "checkpoints saved or resumed"},
		{MetricPhases, "application phase transitions"},
	}
	for _, c := range counters {
		// Registration of compile-time constant names cannot fail.
		_ = reg.RegisterCounter(c.name, c.help)
	}
	gauges := []struct{ name, help string }{
		{MetricDBBytes, "database size in bytes (live plus garbage)"},
		{MetricGarbageBytes, "unreclaimed garbage bytes"},
		{MetricGarbageFrac, "garbage as a fraction of database size"},
		{MetricEstimatedFrac, "estimator's garbage fraction at the last collection"},
		{MetricTargetFrac, "policy's target garbage fraction at the last collection"},
		{MetricGCIOFrac, "cumulative collector I/O over total I/O"},
		{MetricAppIO, "cumulative application I/O operations"},
		{MetricGCIO, "cumulative collector I/O operations"},
	}
	for _, g := range gauges {
		_ = reg.RegisterGauge(g.name, g.help)
	}
	_ = reg.RegisterHistogram(MetricIntervalHist, "overwrites between consecutive collections", 0, 2000, 20)
	_ = reg.RegisterHistogram(MetricYieldHist, "bytes reclaimed per collection", 0, 100_000, 20)
	_ = reg.RegisterHistogram(MetricCollectionIOHist, "collector I/O operations per collection", 0, 400, 20)
	_ = reg.RegisterGauge(MetricDraining, "1 while graceful shutdown is draining in-flight work")
	_ = reg.RegisterCounter(MetricRunFailures, "batch runs that failed, any class")
	for _, class := range simerr.FailureClasses() {
		_ = reg.RegisterCounter(RunFailureMetric(class),
			fmt.Sprintf("batch runs that failed with class %s", class))
	}
	return &Live{reg: reg}
}

// Registry exposes the underlying registry (for /metrics).
func (l *Live) Registry() *Registry { return l.reg }

// Status returns a copy of the current run status.
func (l *Live) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// SetDraining flips the draining flag (and gauge). The gcsim and
// experiments CLIs set it when the first interrupt arrives, so /healthz and
// /statusz report the shutdown to load balancers and operators.
func (l *Live) SetDraining(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.Draining = on
	v := 0.0
	if on {
		v = 1
	}
	l.reg.Set(MetricDraining, v)
}

// Draining reports whether graceful shutdown has begun.
func (l *Live) Draining() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Draining
}

// ObserveRunFailure counts a failed batch run under its failure class. It is
// not part of the Observer interface — the batch supervisor calls it
// directly from its status callback.
func (l *Live) ObserveRunFailure(class simerr.Class) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg.Add(MetricRunFailures, 1)
	l.reg.Add(RunFailureMetric(class), 1)
}

// advanceStep moves the event cursor forward, advancing the monotone
// events counter by the delta (hooks carry absolute cursors).
func (l *Live) advanceStep(step int) {
	if step > l.lastStep {
		l.reg.Add(MetricEvents, float64(step-l.lastStep))
		l.lastStep = step
	}
	l.st.Step = step
}

func (l *Live) setClock(c Clock) {
	l.st.Clock = c
	l.reg.Set(MetricAppIO, float64(c.AppIO))
	l.reg.Set(MetricGCIO, float64(c.GCIO))
	if tot := c.AppIO + c.GCIO; tot > 0 {
		frac := float64(c.GCIO) / float64(tot)
		l.st.AchievedGCIOFrac = Float(frac)
		l.reg.Set(MetricGCIOFrac, frac)
	}
}

// ObserveRunStart implements Observer.
func (l *Live) ObserveRunStart(e RunStart) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.Running = true
	l.st.Policy = e.Policy
	l.st.Selection = e.Selection
	l.lastStep = e.Resumed
	l.st.Step = e.Resumed
}

// ObservePhase implements Observer.
func (l *Live) ObservePhase(e PhaseChange) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.Phase = e.Label
	l.advanceStep(e.Step)
	l.reg.Add(MetricPhases, 1)
}

// ObserveDecision implements Observer.
func (l *Live) ObserveDecision(e Decision) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advanceStep(e.Step)
	l.setClock(e.Clock)
	l.reg.Add(MetricDecisions, 1)
	l.reg.Set(MetricDBBytes, float64(e.DBBytes))
	l.reg.Set(MetricGarbageBytes, float64(e.GarbageBytes))
}

// ObserveCollection implements Observer.
func (l *Live) ObserveCollection(e Collection) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advanceStep(e.Step)
	l.st.Collections = e.Index
	l.st.Phase = e.Phase
	l.st.AchievedGarbageFrac = e.GarbageFrac
	l.st.TargetGarbageFrac = e.TargetFrac
	l.st.ReclaimedBytes += uint64(e.ReclaimedBytes)
	l.setClock(e.Clock)

	l.reg.Add(MetricCollections, 1)
	l.reg.Add(MetricReclaimed, float64(e.ReclaimedBytes))
	l.reg.Set(MetricDBBytes, float64(e.DBBytes))
	l.reg.Set(MetricGarbageBytes, float64(e.GarbageBytes))
	l.reg.Set(MetricGarbageFrac, float64(e.GarbageFrac))
	l.reg.Set(MetricEstimatedFrac, float64(e.EstimatedFrac))
	l.reg.Set(MetricTargetFrac, float64(e.TargetFrac))
	l.reg.Observe(MetricIntervalHist, float64(e.Interval))
	l.reg.Observe(MetricYieldHist, float64(e.ReclaimedBytes))
	l.reg.Observe(MetricCollectionIOHist, float64(e.IO.GCReads+e.IO.GCWrites))
}

// ObserveFault implements Observer.
func (l *Live) ObserveFault(e Fault) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.FaultsInjected++
	l.reg.Add(MetricFaults, 1)
}

// ObserveCheckpoint implements Observer.
func (l *Live) ObserveCheckpoint(e CheckpointMark) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg.Add(MetricCheckpoints, 1)
}

// ObserveProgress implements Observer.
func (l *Live) ObserveProgress(e Progress) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advanceStep(e.Step)
	l.st.Collections = e.Collections
	l.st.Phase = e.Phase
	l.setClock(e.Clock)
}

// ObserveRunEnd implements Observer.
func (l *Live) ObserveRunEnd(e RunEnd) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.Running = false
	l.advanceStep(e.Events)
	l.st.Collections = e.Collections
	l.st.AchievedGarbageFrac = e.GarbageFrac
	l.st.AchievedGCIOFrac = e.GCIOFrac
	final := e
	l.st.Final = &final
}
