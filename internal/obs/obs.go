// Package obs is the simulator's zero-dependency observability layer:
// typed observer hooks the simulation loop fires at its structural moments
// (run start/end, policy decisions, collections, phase transitions, fault
// injections, checkpoint save/resume), a structured JSONL event emitter
// with a versioned byte-deterministic encoding, an in-process metrics
// registry with Prometheus text-format exposition, and run provenance
// manifests that make every persisted result attributable to the exact
// configuration, seeds, and trace that produced it.
//
// Determinism contract: observers are write-only — the simulator never
// reads anything back from them — and every field of every event derives
// from simulated time (core.Clock) and simulated state, never from the wall
// clock. The wall clock appears only at the HTTP boundary (uptime on the
// status endpoint), under a reasoned //lint:allow, so detrand stays green
// over this package. A nil Observer in sim.Config costs nothing: the
// simulator guards every hook with a nil check and allocates no event
// structs.
package obs

import "odbgc/internal/core"

// SchemaVersion identifies the JSONL event schema. Bump on any change to
// event field sets or semantics; consumers reject versions they don't know.
const SchemaVersion = 1

// ToolVersion names the emitting build in manifests. It is a hand-bumped
// constant rather than VCS metadata so identical configurations produce
// byte-identical manifests regardless of how the binary was built.
const ToolVersion = "odbgc-0.3.0"

// RunStart announces a run's static configuration before the first event.
type RunStart struct {
	Policy       string `json:"policy"`
	Selection    string `json:"selection"`
	Preamble     int    `json:"preamble"`
	FaultProfile string `json:"fault_profile,omitempty"`
	FaultSeed    int64  `json:"fault_seed,omitempty"`
	// Resumed is the checkpoint cursor when the run continues a prior one;
	// zero for fresh runs.
	Resumed int `json:"resumed,omitempty"`
}

// Clock mirrors core.Clock with stable JSON names.
type Clock struct {
	AppIO      uint64 `json:"app_io"`
	GCIO       uint64 `json:"gc_io"`
	Overwrites uint64 `json:"overwrites"`
}

// ClockOf converts a core.Clock.
func ClockOf(c core.Clock) Clock {
	return Clock{AppIO: c.AppIO, GCIO: c.GCIO, Overwrites: c.Overwrites}
}

// IO mirrors storage.IOStats with stable JSON names.
type IO struct {
	AppReads  uint64 `json:"app_reads"`
	AppWrites uint64 `json:"app_writes"`
	GCReads   uint64 `json:"gc_reads"`
	GCWrites  uint64 `json:"gc_writes"`
}

// PhaseChange marks an application phase transition.
type PhaseChange struct {
	Step        int    `json:"step"` // event cursor when the phase began
	Label       string `json:"label"`
	Collections int    `json:"collections"`
	Overwrites  uint64 `json:"overwrites"`
}

// Decision records one policy consultation that triggered collection work:
// the controller's inputs (simulated clock, database and garbage sizes) and
// its outputs (estimate, target, chosen interval, whether a partition was
// actually collected).
type Decision struct {
	Step         int    `json:"step"`
	Clock        Clock  `json:"clock"`
	DBBytes      int    `json:"db_bytes"`
	GarbageBytes int    `json:"garbage_bytes"`
	Collected    bool   `json:"collected"`
	Estimate     Float  `json:"estimate"`      // estimated garbage bytes (0 for non-estimating policies)
	Target       Float  `json:"target"`        // target garbage bytes
	NextInterval uint64 `json:"next_interval"` // overwrites until the next collection (0 = policy-internal)
	Idle         bool   `json:"idle,omitempty"`
}

// Collection records one completed collection — the observer-facing twin of
// sim.CollectionRecord.
type Collection struct {
	Index            int    `json:"index"`
	Step             int    `json:"step"`
	Phase            string `json:"phase"`
	Clock            Clock  `json:"clock"`
	Interval         uint64 `json:"interval"`
	Partition        int    `json:"partition"`
	ReclaimedBytes   int    `json:"reclaimed_bytes"`
	ReclaimedObjects int    `json:"reclaimed_objects"`
	LiveBytes        int    `json:"live_bytes"`
	PartitionPO      int    `json:"partition_po"`
	IO               IO     `json:"io"`
	CumulativeIO     IO     `json:"cumulative_io"`
	DBBytes          int    `json:"db_bytes"`
	GarbageBytes     int    `json:"garbage_bytes"`
	GarbageFrac      Float  `json:"garbage_frac"`
	EstimatedFrac    Float  `json:"estimated_frac"`
	TargetFrac       Float  `json:"target_frac"`
	NextInterval     uint64 `json:"next_interval"`
}

// Fault records one injected storage fault.
type Fault struct {
	Step  int    `json:"step"`
	Op    string `json:"op"`  // "read" or "write"
	Seq   uint64 `json:"seq"` // the injector's operation counter
	Burst bool   `json:"burst,omitempty"`
}

// CheckpointMark records a checkpoint capture or a resume from one.
type CheckpointMark struct {
	Step int    `json:"step"`
	Op   string `json:"op"` // "save" or "resume"
}

// Progress is a coarse heartbeat emitted every ProgressEvery events so live
// consumers can track a long run between collections.
type Progress struct {
	Step        int    `json:"step"`
	Collections int    `json:"collections"`
	Phase       string `json:"phase"`
	Clock       Clock  `json:"clock"`
}

// RunEnd carries the run's summary.
type RunEnd struct {
	Events       int    `json:"events"`
	Collections  int    `json:"collections"`
	Preamble     int    `json:"effective_preamble"`
	GCIOFrac     Float  `json:"gc_io_frac"`
	GarbageFrac  Float  `json:"garbage_frac"`
	Reclaimed    uint64 `json:"reclaimed_bytes"`
	TotalGarbage uint64 `json:"total_garbage_bytes"`
	FinalDBBytes int    `json:"final_db_bytes"`
	FinalGarbage int    `json:"final_garbage_bytes"`
	Partitions   int    `json:"partitions"`
	TotalIO      uint64 `json:"total_io"`
}

// Observer receives simulation lifecycle events. Implementations must not
// mutate anything the simulator reads — hooks are strictly write-only taps.
// All methods are called from the simulation goroutine, in deterministic
// order; implementations that share state with other goroutines (e.g. an
// HTTP status endpoint) do their own locking.
type Observer interface {
	ObserveRunStart(RunStart)
	ObservePhase(PhaseChange)
	ObserveDecision(Decision)
	ObserveCollection(Collection)
	ObserveFault(Fault)
	ObserveCheckpoint(CheckpointMark)
	ObserveProgress(Progress)
	ObserveRunEnd(RunEnd)
}

// Multi fans events out to several observers in order.
type Multi []Observer

// NewMulti returns an observer broadcasting to all non-nil arguments; it
// returns nil when none remain, preserving the "nil observer costs nothing"
// fast path in the simulator.
func NewMulti(obs ...Observer) Observer {
	var m Multi
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// ObserveRunStart implements Observer.
func (m Multi) ObserveRunStart(e RunStart) {
	for _, o := range m {
		o.ObserveRunStart(e)
	}
}

// ObservePhase implements Observer.
func (m Multi) ObservePhase(e PhaseChange) {
	for _, o := range m {
		o.ObservePhase(e)
	}
}

// ObserveDecision implements Observer.
func (m Multi) ObserveDecision(e Decision) {
	for _, o := range m {
		o.ObserveDecision(e)
	}
}

// ObserveCollection implements Observer.
func (m Multi) ObserveCollection(e Collection) {
	for _, o := range m {
		o.ObserveCollection(e)
	}
}

// ObserveFault implements Observer.
func (m Multi) ObserveFault(e Fault) {
	for _, o := range m {
		o.ObserveFault(e)
	}
}

// ObserveCheckpoint implements Observer.
func (m Multi) ObserveCheckpoint(e CheckpointMark) {
	for _, o := range m {
		o.ObserveCheckpoint(e)
	}
}

// ObserveProgress implements Observer.
func (m Multi) ObserveProgress(e Progress) {
	for _, o := range m {
		o.ObserveProgress(e)
	}
}

// ObserveRunEnd implements Observer.
func (m Multi) ObserveRunEnd(e RunEnd) {
	for _, o := range m {
		o.ObserveRunEnd(e)
	}
}
