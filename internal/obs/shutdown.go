package obs

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Shutdown coordinates two-stage graceful shutdown for the CLIs:
//
//	stage 1 (first SIGINT/SIGTERM, or first Interrupt call): the Draining
//	  channel closes. Batch engines stop scheduling new runs; in-flight
//	  work finishes, checkpoints, and flushes, so a rerun with the same
//	  checkpoint directory resumes exactly where the batch left off.
//	stage 2 (second signal / Interrupt): the hard Context is cancelled.
//	  In-flight runs stop at their next event boundary and the process
//	  exits promptly, leaving the checkpoint cache valid but incomplete.
//
// Interrupt is the signal-free entry point, so tests drive both stages
// without process signals.
type Shutdown struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	draining chan struct{}
	stage    int
}

// NewShutdown builds a Shutdown whose hard context descends from parent. No
// signals are wired until Notify is called.
func NewShutdown(parent context.Context) *Shutdown {
	ctx, cancel := context.WithCancel(parent)
	return &Shutdown{ctx: ctx, cancel: cancel, draining: make(chan struct{})}
}

// Context is the hard-cancel context: it ends at stage 2 (or when the
// parent ends). Pass it to RunManyContext and friends.
func (s *Shutdown) Context() context.Context { return s.ctx }

// Draining is closed at stage 1. Plug it into RunnerConfig.Drain and select
// on it in event loops that want to stop at a clean boundary.
func (s *Shutdown) Draining() <-chan struct{} { return s.draining }

// Interrupt advances one shutdown stage: the first call begins draining,
// the second (and any later) cancels the hard context. It reports the stage
// just entered (1 or 2) and is safe to call concurrently.
func (s *Shutdown) Interrupt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.stage {
	case 0:
		s.stage = 1
		close(s.draining)
	case 1:
		s.stage = 2
		s.cancel()
	}
	return s.stage
}

// Notify wires OS signals to Interrupt; with no arguments it watches SIGINT
// and SIGTERM. The returned stop function unregisters the handler and
// releases its goroutine; call it once shutdown handling is no longer
// wanted.
func (s *Shutdown) Notify(sigs ...os.Signal) (stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-ch:
				s.Interrupt()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
