package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/trace"
)

func sampleManifest(t *testing.T) *Manifest {
	t.Helper()
	m := &Manifest{
		Tool: "gcsim",
		Config: ConfigKVs(map[string]string{
			"frac":     "0.10",
			"workload": "oo7",
			"seed":     "42",
		}),
		Seed:      42,
		Policy:    "saio(10%)",
		Selection: "updated-pointer",
	}
	if err := m.SetSummary(Summary{Events: 100, Collections: 7, Reclaimed: 4096}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManifestEncodeDeterministic(t *testing.T) {
	a, err := sampleManifest(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleManifest(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("identical manifests encoded differently:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("manifest does not end in newline")
	}
	// Config keys sort regardless of the map's iteration order.
	text := string(a)
	if strings.Index(text, `"frac"`) > strings.Index(text, `"seed"`) ||
		strings.Index(text, `"seed"`) > strings.Index(text, `"workload"`) {
		t.Errorf("config keys not sorted:\n%s", text)
	}
}

func TestManifestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()

	artifact := filepath.Join(dir, "summary.csv")
	if err := os.WriteFile(artifact, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := sampleManifest(t)
	if err := m.AddArtifact(artifact); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "gcsim" || back.Seed != 42 || back.Policy != "saio(10%)" {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.SummarySHA256 == "" || back.SummarySHA256 != m.SummarySHA256 {
		t.Errorf("summary digest mismatch: %q vs %q", back.SummarySHA256, m.SummarySHA256)
	}
	if len(back.Artifacts) != 1 {
		t.Fatalf("artifacts: %+v", back.Artifacts)
	}
	art := back.Artifacts[0]
	if art.Path != "summary.csv" || art.Bytes != 8 || len(art.SHA256) != 64 {
		t.Errorf("artifact digest: %+v", art)
	}
}

func TestReadManifestRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte(`{"manifest_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("unknown version accepted: %v", err)
	}
}

func TestHashTrace(t *testing.T) {
	mk := func(label string) *trace.Trace {
		tr := &trace.Trace{}
		tr.Append(trace.Event{Kind: trace.KindPhase, Label: label})
		return tr
	}
	a1, err := HashTrace(mk("Gen"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := HashTrace(mk("Gen"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashTrace(mk("Other"))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical traces hash differently")
	}
	if a1 == b {
		t.Error("distinct traces hash identically")
	}
	if len(a1) != 64 {
		t.Errorf("digest length %d", len(a1))
	}
}
