// Package span is the request-scoped tracing layer for the serving stack
// and the simulator: deterministic span IDs (derived from session and
// sequence numbers, never randomness), parent links from GC-pause spans to
// the requests that overlapped them, and fixed-cardinality stage timings
// for the full request lifecycle — accept, frame decode, admission-queue
// wait, engine service, response write.
//
// All timestamps are caller-supplied ticks: the live server passes
// nanoseconds since engine start, the simulator passes its simulated I/O
// clock. The package itself never reads a clock, so it is usable from the
// deterministic core, and span dumps from identical runs are byte-identical.
//
// Spans are retained by a Recorder (see recorder.go), a preallocated
// ring-buffer flight recorder with tail-based retention, and serialized as
// versioned JSONL envelopes with the same discipline as the obs event log.
package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"odbgc/internal/obs"
)

// Stage indices into Span.Stages. StageAccept (connection accept to first
// request arrival) is charged only on a session's first span and lies
// outside the span's [Start, End] window; every other stage nests inside it.
const (
	StageAccept = iota
	StageDecode
	StageQueue
	StageService
	StageWrite
	NumStages
)

// stageNames maps stage indices to their wire/metric names.
var stageNames = [NumStages]string{"accept", "decode", "queue", "service", "write"}

// StageName returns the name of stage i ("" when out of range).
func StageName(i int) string {
	if i < 0 || i >= NumStages {
		return ""
	}
	return stageNames[i]
}

// Span kinds.
const (
	KindRequest = "request" // one client request through the serving stack
	KindGC      = "gc"      // one garbage collection, child of the request it overlapped
)

// Span outcomes. Everything but OutcomeOK is always retained by the
// flight recorder.
const (
	OutcomeOK      = "ok"
	OutcomeShed    = "shed"    // refused by admission control
	OutcomeExpired = "expired" // deadline passed while queued; never executed
	OutcomeError   = "error"   // executed and failed (or failed to collect)
	OutcomeClosed  = "closed"  // refused because the server is draining
)

// RequestID derives the deterministic span ID for request seq of session:
// the session number shifted past a 20-bit sequence field. IDs never come
// from a random source, so identical runs trace identically.
func RequestID(session, seq uint64) uint64 {
	return session<<20 | seq&(1<<20-1)
}

// GCID derives the deterministic span ID for the n-th collection: the top
// bit tags the GC ID space so collection spans can never collide with
// request spans.
func GCID(n uint64) uint64 {
	return 1<<63 | n
}

// IsGCID reports whether id lies in the GC span ID space.
func IsGCID(id uint64) bool { return id>>63 == 1 }

// Span is one traced unit of work. Request spans carry per-stage timings;
// GC spans carry collection attribution (what was traced and reclaimed,
// what the estimator said, the breaker state) plus a parent link to the
// request span in whose shadow the collection ran.
type Span struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Op      string `json:"op,omitempty"`
	Outcome string `json:"outcome"`
	Session uint64 `json:"session,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`

	// Start and End are caller-clock ticks (nanoseconds since engine start
	// on the live server, the simulated I/O clock under gcsim).
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Stages holds per-stage durations in ticks, indexed by Stage*.
	Stages [NumStages]int64 `json:"stages"`

	// GC attribution (KindGC spans only).
	Partition        int       `json:"partition,omitempty"`
	ReclaimedBytes   int       `json:"reclaimed_bytes,omitempty"`
	ReclaimedObjects int       `json:"reclaimed_objects,omitempty"`
	TracedObjects    int       `json:"traced_objects,omitempty"`
	EstimateFrac     obs.Float `json:"estimate_frac,omitempty"`
	TargetFrac       obs.Float `json:"target_frac,omitempty"`
	Breaker          string    `json:"breaker,omitempty"`
	QueuedBehind     int       `json:"queued_behind,omitempty"`

	// Pinned marks a request span kept alive because a GC span names it as
	// parent; the flight recorder never evicts pinned spans before unpinned
	// ones.
	Pinned bool `json:"pinned,omitempty"`
}

// SpanID returns the span's ID; a nil span (the disabled-recorder fast
// path) has ID 0.
func (sp *Span) SpanID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.ID
}

// SetStage records a stage duration. Nil spans and out-of-range stages are
// ignored, so instrumentation sites need no recorder-enabled branches.
func (sp *Span) SetStage(stage int, ticks int64) {
	if sp == nil || stage < 0 || stage >= NumStages {
		return
	}
	sp.Stages[stage] = ticks
}

// Duration returns End-Start (0 for a nil span).
func (sp *Span) Duration() int64 {
	if sp == nil {
		return 0
	}
	return sp.End - sp.Start
}

// validOutcome reports whether o is a known outcome tag.
func validOutcome(o string) bool {
	switch o {
	case OutcomeOK, OutcomeShed, OutcomeExpired, OutcomeError, OutcomeClosed:
		return true
	}
	return false
}

// Check validates one span's internal consistency: a known kind and
// outcome, a nonzero ID in the kind's ID space, monotone timestamps, and
// non-negative stage durations whose in-span sum (everything but the
// pre-span accept stage) fits inside the span's duration.
func (sp *Span) Check() error {
	if sp.ID == 0 {
		return fmt.Errorf("span: zero ID")
	}
	switch sp.Kind {
	case KindRequest:
		if IsGCID(sp.ID) {
			return fmt.Errorf("span %#x: request span with a GC-space ID", sp.ID)
		}
	case KindGC:
		if !IsGCID(sp.ID) {
			return fmt.Errorf("span %#x: gc span outside the GC ID space", sp.ID)
		}
		if sp.Parent != 0 && IsGCID(sp.Parent) {
			return fmt.Errorf("span %#x: gc span parented to another gc span %#x", sp.ID, sp.Parent)
		}
	default:
		return fmt.Errorf("span %#x: unknown kind %q", sp.ID, sp.Kind)
	}
	if !validOutcome(sp.Outcome) {
		return fmt.Errorf("span %#x: unknown outcome %q", sp.ID, sp.Outcome)
	}
	if sp.End < sp.Start {
		return fmt.Errorf("span %#x: end %d before start %d", sp.ID, sp.End, sp.Start)
	}
	var inSpan int64
	for i, d := range sp.Stages {
		if d < 0 {
			return fmt.Errorf("span %#x: negative %s stage %d", sp.ID, StageName(i), d)
		}
		if i != StageAccept {
			inSpan += d
		}
	}
	if sp.Kind == KindRequest && inSpan > sp.End-sp.Start {
		return fmt.Errorf("span %#x: stage sum %d exceeds duration %d", sp.ID, inSpan, sp.End-sp.Start)
	}
	return nil
}

// SchemaVersion is the span envelope schema version; every JSONL line
// carries it.
const SchemaVersion = 1

// TypeSpan is the envelope type tag for a span payload.
const TypeSpan = "span"

// Envelope is one span JSONL line, following the obs event-log discipline:
// schema version, contiguous sequence number, type tag, one payload.
type Envelope struct {
	V    int    `json:"v"`
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	Span *Span  `json:"span,omitempty"`
}

// Validate checks the envelope's structural invariants.
func (e *Envelope) Validate() error {
	if e.V != SchemaVersion {
		return fmt.Errorf("span: unknown schema version %d (have %d)", e.V, SchemaVersion)
	}
	if e.Type != TypeSpan {
		return fmt.Errorf("span: unknown envelope type %q", e.Type)
	}
	if e.Span == nil {
		return fmt.Errorf("span: envelope %d carries no span payload", e.Seq)
	}
	return nil
}

// WriteJSONL writes spans as one envelope per line, sequence numbers
// assigned in slice order. The encoding is byte-deterministic for a given
// span slice.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	for i := range spans {
		env := Envelope{V: SchemaVersion, Seq: uint64(i), Type: TypeSpan, Span: &spans[i]}
		b, err := json.Marshal(&env)
		if err != nil {
			return fmt.Errorf("span: encoding span %d: %w", i, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll decodes and validates a span JSONL dump: every line must carry
// the schema version, the span type tag, a payload, and a contiguous
// sequence number.
func ReadAll(rd io.Reader) ([]*Span, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []*Span
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			return out, fmt.Errorf("span: line %d: %w", line, err)
		}
		if err := env.Validate(); err != nil {
			return out, fmt.Errorf("span: line %d: %w", line, err)
		}
		if want := uint64(len(out)); env.Seq != want {
			return out, fmt.Errorf("span: line %d: sequence %d, want %d", line, env.Seq, want)
		}
		out = append(out, env.Span)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("span: line %d: %w", line, err)
	}
	return out, nil
}

// CheckAll validates a span dump's integrity: every span passes Check, IDs
// are unique, and GC parent links resolve to request spans. A GC span whose
// parent is absent from the dump is counted as dangling, not an error — a
// mid-load snapshot legitimately misses parents still in flight; a
// post-drain dump should report zero.
func CheckAll(spans []*Span) (dangling int, err error) {
	ids := make(map[uint64]*Span, len(spans))
	for _, sp := range spans {
		if err := sp.Check(); err != nil {
			return dangling, err
		}
		if prev := ids[sp.ID]; prev != nil {
			return dangling, fmt.Errorf("span: duplicate ID %#x", sp.ID)
		}
		ids[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Kind != KindGC || sp.Parent == 0 {
			continue
		}
		parent := ids[sp.Parent]
		if parent == nil {
			dangling++
			continue
		}
		if parent.Kind != KindRequest {
			return dangling, fmt.Errorf("span %#x: parent %#x is not a request span", sp.ID, sp.Parent)
		}
	}
	return dangling, nil
}

// errTruncated guards ReadAll misuse surfaces in tests.
var _ = errors.Is
