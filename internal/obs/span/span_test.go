package span

import (
	"bytes"
	"strings"
	"testing"
)

// reqSpan runs one ok request span of the given duration through r.
func reqSpan(t *testing.T, r *Recorder, session, seq uint64, start, dur int64, outcome string) uint64 {
	t.Helper()
	id := RequestID(session, seq)
	sp := r.Start(KindRequest, "ping", id, 0, start)
	if sp == nil {
		t.Fatalf("Start returned nil span on a live recorder")
	}
	sp.Session, sp.Seq = session, seq
	sp.SetStage(StageService, dur)
	r.Finish(sp, start+dur, outcome)
	return id
}

func TestIDSpaces(t *testing.T) {
	if got := RequestID(3, 7); got != 3<<20|7 {
		t.Fatalf("RequestID(3,7) = %#x", got)
	}
	if IsGCID(RequestID(1, 1)) {
		t.Fatalf("request ID landed in the GC space")
	}
	if !IsGCID(GCID(1)) {
		t.Fatalf("GC ID outside the GC space")
	}
	// Distinct (session, seq) pairs within the sequence field width give
	// distinct IDs.
	seen := map[uint64]bool{}
	for s := uint64(1); s <= 8; s++ {
		for q := uint64(1); q <= 64; q++ {
			id := RequestID(s, q)
			if seen[id] {
				t.Fatalf("duplicate ID %#x for (%d,%d)", id, s, q)
			}
			seen[id] = true
		}
	}
}

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	sp := r.Start(KindRequest, "ping", 1, 0, 0)
	if sp != nil {
		t.Fatalf("nil recorder Start = %v, want nil", sp)
	}
	sp.SetStage(StageQueue, 5) // nil span: must not panic
	if sp.SpanID() != 0 {
		t.Fatalf("nil span ID = %d", sp.SpanID())
	}
	r.Finish(sp, 10, OutcomeOK)
	r.PinID(42)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", st)
	}
}

func TestTailRetention(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	// Flood with ok spans far past both rings, then one of each bad
	// outcome; the bad ones must all survive.
	var tick int64
	for i := uint64(1); i <= 100; i++ {
		tick += 10
		reqSpan(t, r, 1, i, tick, 5, OutcomeOK)
	}
	bad := map[uint64]string{
		RequestID(2, 1): OutcomeShed,
		RequestID(2, 2): OutcomeError,
		RequestID(2, 3): OutcomeExpired,
		RequestID(2, 4): OutcomeClosed,
	}
	seq := uint64(0)
	for _, out := range []string{OutcomeShed, OutcomeError, OutcomeExpired, OutcomeClosed} {
		seq++
		tick += 10
		reqSpan(t, r, 2, seq, tick, 1, out)
	}
	// More ok flood: retained ring must keep the bad spans anyway.
	for i := uint64(101); i <= 200; i++ {
		tick += 10
		reqSpan(t, r, 1, i, tick, 5, OutcomeOK)
	}
	got := map[uint64]string{}
	for _, sp := range r.Snapshot() {
		got[sp.ID] = sp.Outcome
	}
	for id, out := range bad {
		if got[id] != out {
			t.Errorf("span %#x (%s) not retained; snapshot has %q", id, out, got[id])
		}
	}
	if st := r.Stats(); st.Shed != 1 || st.Retained < 4 {
		t.Errorf("stats = %+v, want Shed=1 Retained>=4", st)
	}
}

func TestSlowTailRetention(t *testing.T) {
	r := NewRecorder(Config{Capacity: 512})
	var tick int64
	// Establish a tight duration distribution, then emit one huge outlier
	// and flood on; the outlier must be retained as slow.
	for i := uint64(1); i <= 200; i++ {
		tick += 10
		reqSpan(t, r, 1, i, tick, 5, OutcomeOK)
	}
	slow := reqSpan(t, r, 3, 1, tick+10, 100000, OutcomeOK)
	for _, sp := range r.Snapshot() {
		if sp.ID == slow {
			if !retainedIn(r, slow) {
				t.Fatalf("slow span present but not in the retained ring")
			}
			return
		}
	}
	t.Fatalf("slow outlier %#x missing from snapshot", slow)
}

// retainedIn reports whether id sits in the retained ring.
func retainedIn(r *Recorder, id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sp := range r.ret.buf {
		if sp != nil && sp.ID == id {
			return true
		}
	}
	return false
}

func TestGCSpansAndPinning(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	parent := reqSpan(t, r, 1, 1, 100, 10, OutcomeOK) // lands in bulk
	g := r.Start(KindGC, "collect", GCID(1), parent, 120)
	g.ReclaimedBytes = 4096
	r.PinID(parent)
	r.Finish(g, 130, OutcomeOK)
	// Flood: the pinned parent and the GC child must survive 100 evictions.
	var tick int64 = 200
	for i := uint64(2); i <= 101; i++ {
		tick += 10
		reqSpan(t, r, 1, i, tick, 5, OutcomeOK)
	}
	snap := r.Snapshot()
	byID := map[uint64]Span{}
	for _, sp := range snap {
		byID[sp.ID] = sp
	}
	p, ok := byID[parent]
	if !ok || !p.Pinned {
		t.Fatalf("pinned parent %#x missing or unpinned: %+v", parent, p)
	}
	child, ok := byID[GCID(1)]
	if !ok || child.Parent != parent || child.ReclaimedBytes != 4096 {
		t.Fatalf("gc child wrong: %+v", child)
	}
	ptrs := make([]*Span, 0, len(snap))
	for i := range snap {
		ptrs = append(ptrs, &snap[i])
	}
	if dangling, err := CheckAll(ptrs); err != nil || dangling != 0 {
		t.Fatalf("CheckAll = (%d, %v), want (0, nil)", dangling, err)
	}
}

func TestPendingPinConsumedAtFinish(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	id := RequestID(4, 1)
	sp := r.Start(KindRequest, "set", id, 0, 10)
	// GC names the parent before the session finishes it: the pin parks.
	r.PinID(id)
	sp.SetStage(StageService, 5)
	r.Finish(sp, 20, OutcomeOK)
	if !retainedIn(r, id) {
		t.Fatalf("span pinned before Finish was not retained")
	}
	for _, s := range r.Snapshot() {
		if s.ID == id && !s.Pinned {
			t.Fatalf("span %#x retained but not marked pinned", id)
		}
	}
}

func TestSpikeCallback(t *testing.T) {
	fired := 0
	var gotShed, gotWin int
	r := NewRecorder(Config{Capacity: 32, SpikeSheds: 4, SpikeWindow: 8,
		OnSpike: func(shed, window int) { fired++; gotShed, gotWin = shed, window }})
	var tick int64
	for i := uint64(1); i <= 8; i++ {
		tick += 10
		out := OutcomeOK
		if i%2 == 0 {
			out = OutcomeShed
		}
		reqSpan(t, r, 1, i, tick, 1, out)
	}
	if fired != 1 {
		t.Fatalf("OnSpike fired %d times, want 1", fired)
	}
	if gotShed < 4 || gotWin < 8 {
		t.Fatalf("OnSpike(%d, %d), want >=4 of >=8", gotShed, gotWin)
	}
	if st := r.Stats(); st.Spikes != 1 {
		t.Fatalf("stats.Spikes = %d, want 1", st.Spikes)
	}
}

func TestJSONLRoundTripAndCheck(t *testing.T) {
	r := NewRecorder(Config{Capacity: 16})
	parent := reqSpan(t, r, 1, 1, 100, 50, OutcomeShed)
	g := r.Start(KindGC, "collect", GCID(7), parent, 160)
	r.Finish(g, 170, OutcomeOK)

	var buf bytes.Buffer
	n, err := r.Dump(&buf)
	if err != nil || n != 2 {
		t.Fatalf("Dump = (%d, %v), want (2, nil)", n, err)
	}
	spans, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(spans))
	}
	if dangling, err := CheckAll(spans); err != nil || dangling != 0 {
		t.Fatalf("CheckAll = (%d, %v)", dangling, err)
	}
	// Byte-determinism: dumping the same recorder twice is identical.
	var buf2 bytes.Buffer
	if _, err := r.Dump(&buf2); err != nil {
		t.Fatalf("second Dump: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("two dumps of the same recorder differ")
	}
}

func TestReadAllRejectsBadEnvelopes(t *testing.T) {
	cases := map[string]string{
		"bad version": `{"v":9,"seq":0,"type":"span","span":{"id":1,"kind":"request","outcome":"ok"}}`,
		"bad type":    `{"v":1,"seq":0,"type":"event","span":{"id":1,"kind":"request","outcome":"ok"}}`,
		"no payload":  `{"v":1,"seq":0,"type":"span"}`,
		"seq gap":     `{"v":1,"seq":5,"type":"span","span":{"id":1,"kind":"request","outcome":"ok"}}`,
		"not json":    `nope`,
	}
	for name, line := range cases {
		if _, err := ReadAll(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ReadAll accepted %q", name, line)
		}
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	ok := Span{ID: RequestID(1, 1), Kind: KindRequest, Outcome: OutcomeOK, Start: 10, End: 30}
	ok.Stages[StageService] = 15
	if err := ok.Check(); err != nil {
		t.Fatalf("valid span rejected: %v", err)
	}
	bad := []Span{ok, ok, ok, ok, ok}
	bad[0].ID = 0
	bad[1].End = 5 // before start
	bad[2].Stages[StageQueue] = -1
	bad[3].Stages[StageService] = 1000 // exceeds duration
	bad[4].Outcome = "maybe"
	for i := range bad {
		if err := bad[i].Check(); err == nil {
			t.Errorf("corruption %d not caught: %+v", i, bad[i])
		}
	}
	// A GC span parented to another GC span is structural corruption.
	g := Span{ID: GCID(2), Parent: GCID(1), Kind: KindGC, Outcome: OutcomeOK}
	if err := g.Check(); err == nil {
		t.Errorf("gc-parented gc span not caught")
	}
	// Dangling parent is counted, not fatal.
	d := &Span{ID: GCID(3), Parent: RequestID(9, 9), Kind: KindGC, Outcome: OutcomeOK}
	if dangling, err := CheckAll([]*Span{d}); err != nil || dangling != 1 {
		t.Errorf("CheckAll dangling = (%d, %v), want (1, nil)", dangling, err)
	}
	// Duplicate IDs are fatal.
	a, b := ok, ok
	if _, err := CheckAll([]*Span{&a, &b}); err == nil {
		t.Errorf("duplicate IDs not caught")
	}
}

func TestSnapshotOrderedByStart(t *testing.T) {
	r := NewRecorder(Config{Capacity: 32})
	reqSpan(t, r, 1, 1, 300, 5, OutcomeShed)
	reqSpan(t, r, 1, 2, 100, 5, OutcomeShed)
	reqSpan(t, r, 1, 3, 200, 5, OutcomeShed)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Start > snap[i].Start {
			t.Fatalf("snapshot out of order at %d: %d > %d", i, snap[i-1].Start, snap[i].Start)
		}
	}
}
