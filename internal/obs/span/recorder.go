package span

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"slices"
)

// Recorder defaults.
const (
	defaultCapacity = 512 // spans per ring (bulk and retained each)
	slowWindow      = 256 // recent request durations tracked for the slow tail
	slowRecalc      = 64  // finishes between slow-threshold recomputations
	slowQuantile    = 90  // percentile above which an ok span is "slow"
	maxPendingPins  = 64  // pins recorded before their span has finished
)

// Config parameterizes a Recorder. The zero value is usable: default
// capacity, p90 slow tail, spike detection disabled.
type Config struct {
	// Capacity is the span count of each ring (bulk and retained);
	// defaultCapacity when <= 0. All memory is allocated up front.
	Capacity int
	// SpikeSheds and SpikeWindow arm shed-spike detection: OnSpike fires
	// whenever at least SpikeSheds of the last SpikeWindow finished request
	// spans were shed. Defaults 16 of 64. OnSpike runs on the goroutine that
	// finished the tripping span, outside the recorder lock.
	SpikeSheds  int
	SpikeWindow int
	OnSpike     func(shed, window int)
}

// Stats is a point-in-time counter snapshot of recorder activity.
type Stats struct {
	Started         uint64 `json:"started"`
	Finished        uint64 `json:"finished"`
	Retained        uint64 `json:"retained"`
	Shed            uint64 `json:"shed"`
	GCSpans         uint64 `json:"gc_spans"`
	Pinned          uint64 `json:"pinned"`
	EvictedBulk     uint64 `json:"evicted_bulk"`
	EvictedRetained uint64 `json:"evicted_retained"`
	Spikes          uint64 `json:"spikes"`
	SlowThreshold   int64  `json:"slow_threshold_ticks"`
}

// ring is a fixed-capacity circular span buffer; slots may hold nil after a
// span is stolen by pinning. add always succeeds and returns the displaced
// occupant, if any.
type ring struct {
	buf  []*Span
	head int
}

func (r *ring) add(sp *Span) *Span {
	old := r.buf[r.head]
	r.buf[r.head] = sp
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	return old
}

// take removes and returns the span with the given ID, or nil.
func (r *ring) take(id uint64) *Span {
	for i, sp := range r.buf {
		if sp != nil && sp.ID == id {
			r.buf[i] = nil
			return sp
		}
	}
	return nil
}

// mark sets Pinned on the span with the given ID, reporting whether it was
// found.
func (r *ring) mark(id uint64) bool {
	for _, sp := range r.buf {
		if sp != nil && sp.ID == id {
			sp.Pinned = true
			return true
		}
	}
	return false
}

// Recorder is the flight recorder: two preallocated rings of pooled spans.
// The bulk ring holds the most recent ok spans; the retained ring holds the
// tail worth keeping — shed, errored, deadline-expired, slowest-percentile,
// GC, and pinned spans — and evicts pinned spans last. A nil *Recorder is a
// valid disabled recorder: Start returns nil and every method is a no-op,
// so instrumented code pays one nil test when tracing is off.
type Recorder struct {
	started atomic.Uint64

	mu   sync.Mutex
	pool sync.Pool
	bulk ring
	ret  ring

	// Slow-tail tracking: a circular window of recent ok-request durations,
	// re-sorted into scratch every slowRecalc finishes to refresh the
	// retention threshold.
	recent     [slowWindow]int64
	scratch    [slowWindow]int64
	recentLen  int
	recentIdx  int
	sinceSort  int
	slowThresh int64

	// Pins recorded for spans that have not finished yet (a GC child named
	// a parent the session is still writing); consumed at Finish.
	pins [maxPendingPins]uint64

	// Shed-spike window.
	winCount int
	winShed  int

	cfg Config
	st  Stats
}

// NewRecorder builds a Recorder with all span storage preallocated.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	if cfg.SpikeSheds <= 0 {
		cfg.SpikeSheds = 16
	}
	if cfg.SpikeWindow < cfg.SpikeSheds {
		cfg.SpikeWindow = 64
		if cfg.SpikeWindow < cfg.SpikeSheds {
			cfg.SpikeWindow = cfg.SpikeSheds
		}
	}
	r := &Recorder{cfg: cfg}
	r.bulk.buf = make([]*Span, cfg.Capacity)
	r.ret.buf = make([]*Span, cfg.Capacity)
	r.pool.New = func() any { return new(Span) }
	return r
}

// Start begins a span at the caller-supplied tick and returns it for the
// caller to fill. The span is owned by the caller until Finish; the
// recorder never touches it in between. Returns nil on a nil recorder.
func (r *Recorder) Start(kind, op string, id, parent uint64, start int64) *Span {
	if r == nil {
		return nil
	}
	sp, ok := r.pool.Get().(*Span)
	if !ok {
		return nil
	}
	*sp = Span{ID: id, Parent: parent, Kind: kind, Op: op, Start: start}
	r.started.Add(1)
	return sp
}

// Finish stamps the span's end tick and outcome and hands it to the flight
// recorder, which decides retention: GC spans, non-ok outcomes, pinned
// spans, and ok spans slower than the rolling slow-tail threshold go to the
// retained ring; everything else cycles through the bulk ring. No-op on a
// nil recorder or nil span.
func (r *Recorder) Finish(sp *Span, end int64, outcome string) {
	if r == nil || sp == nil {
		return
	}
	sp.End = end
	sp.Outcome = outcome
	spike := false
	shed, window := 0, 0
	r.mu.Lock()
	r.st.Finished++
	keep := false
	if sp.Kind == KindGC {
		r.st.GCSpans++
		keep = true
	} else {
		keep = r.observeRequest(sp, outcome, &spike)
	}
	if r.consumePin(sp.ID) {
		sp.Pinned = true
		r.st.Pinned++
		keep = true
	}
	if sp.Pinned {
		keep = true
	}
	if keep {
		r.st.Retained++
		r.retain(sp)
	} else if old := r.bulk.add(sp); old != nil {
		r.st.EvictedBulk++
		r.release(old)
	}
	if spike {
		r.st.Spikes++
		shed, window = r.winShed, r.winCount
		r.winShed, r.winCount = 0, 0
	}
	r.mu.Unlock()
	if spike && r.cfg.OnSpike != nil {
		r.cfg.OnSpike(shed, window)
	}
}

// observeRequest folds a finished request span into the slow-tail and
// shed-spike windows and reports whether the span merits retention. Caller
// holds r.mu.
func (r *Recorder) observeRequest(sp *Span, outcome string, spike *bool) bool {
	dur := sp.End - sp.Start
	keep := outcome != OutcomeOK
	if outcome == OutcomeShed {
		r.st.Shed++
		r.winShed++
	}
	r.winCount++
	if r.winCount >= r.cfg.SpikeWindow {
		if r.winShed >= r.cfg.SpikeSheds {
			*spike = true
		} else {
			r.winShed, r.winCount = 0, 0
		}
	}
	if outcome == OutcomeOK {
		r.recent[r.recentIdx] = dur
		r.recentIdx++
		if r.recentIdx == slowWindow {
			r.recentIdx = 0
		}
		if r.recentLen < slowWindow {
			r.recentLen++
		}
		r.sinceSort++
		if r.sinceSort >= slowRecalc && r.recentLen >= slowRecalc {
			r.sinceSort = 0
			copy(r.scratch[:r.recentLen], r.recent[:r.recentLen])
			slices.Sort(r.scratch[:r.recentLen])
			r.slowThresh = r.scratch[r.recentLen*slowQuantile/100]
		}
		// Strictly slower than the p90 value: under a uniform duration
		// distribution nothing qualifies, so the retained ring is not
		// flooded with ordinary spans.
		if r.slowThresh > 0 && dur > r.slowThresh {
			keep = true
		}
	}
	return keep
}

// retain places a span in the retained ring, evicting the clock-hand victim
// but skipping pinned occupants for as long as any unpinned slot exists.
// Caller holds r.mu.
func (r *Recorder) retain(sp *Span) {
	for range r.ret.buf {
		v := r.ret.buf[r.ret.head]
		if v == nil || !v.Pinned {
			break
		}
		r.ret.head++
		if r.ret.head == len(r.ret.buf) {
			r.ret.head = 0
		}
	}
	if old := r.ret.add(sp); old != nil {
		r.st.EvictedRetained++
		r.release(old)
	}
}

// release recycles an evicted span through the pool. Caller holds r.mu.
func (r *Recorder) release(sp *Span) {
	*sp = Span{}
	r.pool.Put(sp)
}

// consumePin removes id from the pending-pin table, reporting whether it
// was there. Caller holds r.mu.
func (r *Recorder) consumePin(id uint64) bool {
	found := false
	for i, p := range r.pins {
		if p == id {
			r.pins[i] = 0
			found = true
		}
	}
	return found
}

// PinID protects the span with the given ID from eviction — a GC span has
// named it as the request it ran under. If the span is still in flight the
// pin is parked in a small fixed table and consumed when the span finishes;
// if the table is full the oldest pending pin is dropped (the parent may
// then age out of a dump, which CheckAll reports as a dangling reference
// rather than an error). No-op on a nil recorder or zero ID.
func (r *Recorder) PinID(id uint64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if r.ret.mark(id) {
		r.mu.Unlock()
		return
	}
	if sp := r.bulk.take(id); sp != nil {
		sp.Pinned = true
		r.st.Pinned++
		r.st.Retained++
		r.retain(sp)
		r.mu.Unlock()
		return
	}
	slot := -1
	for i, p := range r.pins {
		if p == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		copy(r.pins[:], r.pins[1:])
	}
	r.pins[slot] = id
	r.mu.Unlock()
}

// Snapshot copies every span currently held by either ring, ordered by
// start tick then ID — a deterministic order for a deterministic span set.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, 0, len(r.ret.buf)+len(r.bulk.buf))
	for _, sp := range r.ret.buf {
		if sp != nil {
			out = append(out, *sp)
		}
	}
	for _, sp := range r.bulk.buf {
		if sp != nil {
			out = append(out, *sp)
		}
	}
	r.mu.Unlock()
	slices.SortFunc(out, func(a, b Span) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// Stats returns a snapshot of the recorder's counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	st := r.st
	st.SlowThreshold = r.slowThresh
	r.mu.Unlock()
	st.Started = r.started.Load()
	return st
}

// Dump writes a Snapshot as span JSONL and returns the span count.
func (r *Recorder) Dump(w io.Writer) (int, error) {
	spans := r.Snapshot()
	return len(spans), WriteJSONL(w, spans)
}

// ServeHTTP serves the flight recorder as span JSONL — the /debug/traces
// endpoint.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, err := r.Dump(w); err != nil {
		// The response is already streaming; nothing useful to signal.
		return
	}
}
