package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"odbgc/internal/trace"
)

// ManifestVersion identifies the manifest document format.
const ManifestVersion = 1

// TraceIdentity pins down exactly which event stream a run consumed.
type TraceIdentity struct {
	// Source describes where the trace came from: "file:<name>" or
	// "generated:<workload>".
	Source string `json:"source"`
	Events int    `json:"events"`
	// SHA256 is the hex digest of the trace's canonical binary encoding
	// (trace.WriteAll), so file-backed and in-memory traces with identical
	// events hash identically.
	SHA256 string `json:"sha256"`
}

// ArtifactDigest records an output file a run produced.
type ArtifactDigest struct {
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Summary is the manifest's headline metric digest: enough to compare two
// runs without parsing their event logs.
type Summary struct {
	Events      int    `json:"events"`
	Collections int    `json:"collections"`
	GCIOFrac    Float  `json:"gc_io_frac"`
	GarbageFrac Float  `json:"garbage_frac"`
	Reclaimed   uint64 `json:"reclaimed_bytes"`
	TotalIO     uint64 `json:"total_io"`
}

// Manifest is a run's provenance record: the exact configuration, seeds,
// and trace identity that produced a result, plus digests of the artifacts
// written — enough to reattribute anything in results/ to the run that made
// it, and to re-run it bit for bit.
type Manifest struct {
	ManifestVersion int    `json:"manifest_version"`
	SchemaVersion   int    `json:"event_schema_version"`
	Tool            string `json:"tool"` // emitting command, e.g. "gcsim"
	ToolVersion     string `json:"tool_version"`

	// Config holds the run's effective settings, flag-name keyed. Stored as
	// sorted key/value pairs so encoding never depends on map order.
	Config []KV `json:"config"`

	Seed      int64  `json:"seed"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Selection string `json:"selection,omitempty"`

	Trace     *TraceIdentity   `json:"trace,omitempty"`
	Artifacts []ArtifactDigest `json:"artifacts,omitempty"`
	Summary   *Summary         `json:"summary,omitempty"`

	// SummarySHA256 is the hex digest of the Summary's canonical JSON — a
	// one-line fingerprint for "did these two runs agree".
	SummarySHA256 string `json:"summary_sha256,omitempty"`
}

// KV is one configuration entry.
type KV struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// ConfigKVs converts a settings map into sorted key/value pairs.
func ConfigKVs(m map[string]string) []KV {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kvs := make([]KV, 0, len(keys))
	for _, k := range keys {
		kvs = append(kvs, KV{Key: k, Value: m[k]})
	}
	return kvs
}

// HashTrace computes the TraceIdentity digest of an in-memory trace by
// hashing its canonical binary encoding.
func HashTrace(tr *trace.Trace) (string, error) {
	h := sha256.New()
	if err := trace.WriteAll(h, tr); err != nil {
		return "", fmt.Errorf("obs: hashing trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashFile digests a file on disk, returning its size and hex SHA-256.
func HashFile(path string) (int64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer func() { _ = f.Close() }()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, "", fmt.Errorf("obs: hashing %s: %w", path, err)
	}
	return n, hex.EncodeToString(h.Sum(nil)), nil
}

// AddArtifact hashes an output file and appends its digest, recording the
// base name so manifests stay comparable across directories.
func (m *Manifest) AddArtifact(path string) error {
	n, sum, err := HashFile(path)
	if err != nil {
		return err
	}
	m.Artifacts = append(m.Artifacts, ArtifactDigest{Path: filepath.Base(path), Bytes: n, SHA256: sum})
	return nil
}

// SetSummary attaches the metric summary and computes its digest.
func (m *Manifest) SetSummary(s Summary) error {
	b, err := json.Marshal(&s)
	if err != nil {
		return fmt.Errorf("obs: encoding summary: %w", err)
	}
	sum := sha256.Sum256(b)
	m.Summary = &s
	m.SummarySHA256 = hex.EncodeToString(sum[:])
	return nil
}

// Encode renders the manifest as indented, byte-deterministic JSON.
func (m *Manifest) Encode() ([]byte, error) {
	m.ManifestVersion = ManifestVersion
	m.SchemaVersion = SchemaVersion
	if m.ToolVersion == "" {
		m.ToolVersion = ToolVersion
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: encoding manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// Write encodes the manifest to path atomically (temp file + rename).
func (m *Manifest) Write(path string) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest %s: %w", path, err)
	}
	if m.ManifestVersion != ManifestVersion {
		return nil, fmt.Errorf("obs: manifest %s has version %d (have %d)", path, m.ManifestVersion, ManifestVersion)
	}
	return &m, nil
}
