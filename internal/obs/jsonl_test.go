package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// emitSample drives one of every event type through an observer.
func emitSample(o Observer) {
	o.ObserveRunStart(RunStart{Policy: "saga(10%,fgs-hb(0.80))", Selection: "updated-pointer", Preamble: 10})
	o.ObservePhase(PhaseChange{Step: 0, Label: "GenDB"})
	o.ObserveDecision(Decision{Step: 12, Clock: Clock{AppIO: 9, Overwrites: 3}, DBBytes: 100, GarbageBytes: 10, Collected: true, Estimate: 11, Target: 10, NextInterval: 200})
	o.ObserveCollection(Collection{Index: 1, Step: 12, Phase: "GenDB", Interval: 200, ReclaimedBytes: 512, DBBytes: 100, GarbageFrac: 0.1})
	o.ObserveFault(Fault{Step: 13, Op: "read", Seq: 40})
	o.ObserveCheckpoint(CheckpointMark{Step: 14, Op: "save"})
	o.ObserveProgress(Progress{Step: 1000, Collections: 1, Phase: "GenDB"})
	o.ObserveRunEnd(RunEnd{Events: 2000, Collections: 5, GarbageFrac: Float(math.NaN())})
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	emitSample(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []string{TypeRunStart, TypePhase, TypeDecision, TypeCollection,
		TypeFault, TypeCheckpoint, TypeProgress, TypeRunEnd}
	if len(events) != len(wantTypes) {
		t.Fatalf("got %d events, want %d", len(events), len(wantTypes))
	}
	for i, e := range events {
		if e.Type != wantTypes[i] {
			t.Errorf("event %d: type %q, want %q", i, e.Type, wantTypes[i])
		}
		if e.Seq != uint64(i) {
			t.Errorf("event %d: seq %d", i, e.Seq)
		}
	}
	if got := events[3].Collection.ReclaimedBytes; got != 512 {
		t.Errorf("collection reclaimed = %d, want 512", got)
	}
	if !math.IsNaN(float64(events[7].RunEnd.GarbageFrac)) {
		t.Errorf("NaN garbage frac did not round-trip: %v", events[7].RunEnd.GarbageFrac)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		w := NewJSONLWriter(&buf)
		emitSample(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("identical event streams encoded differently:\n%s\n---\n%s", a, b)
	}
}

func TestFloatEncodings(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.5, "1.5"},
		{math.NaN(), "null"},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
	}
	for _, c := range cases {
		b, err := Float(c.v).MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", c.v, err)
		}
		if string(b) != c.want {
			t.Errorf("Float(%v) = %s, want %s", c.v, b, c.want)
		}
		var back Float
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.IsNaN(c.v) != math.IsNaN(float64(back)) || (!math.IsNaN(c.v) && float64(back) != c.v) {
			t.Errorf("round trip %v -> %v", c.v, back)
		}
	}
}

func TestReadAllRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"bad version", `{"v":99,"seq":0,"type":"fault","fault":{"step":1,"op":"read","seq":2}}`, "schema version"},
		{"unknown type", `{"v":1,"seq":0,"type":"mystery"}`, "unknown event type"},
		{"missing payload", `{"v":1,"seq":0,"type":"fault"}`, "no \"fault\" payload"},
		{"two payloads", `{"v":1,"seq":0,"type":"fault","fault":{"step":1,"op":"read","seq":2},"phase":{"step":0,"label":"x"}}`, "payloads"},
		{"gap in seq", `{"v":1,"seq":5,"type":"fault","fault":{"step":1,"op":"read","seq":2}}`, "sequence"},
		{"not json", `garbage`, "line 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadAll(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestMultiFansOutAndElidesNil(t *testing.T) {
	if NewMulti() != nil {
		t.Error("NewMulti() should be nil")
	}
	if NewMulti(nil, nil) != nil {
		t.Error("NewMulti(nil, nil) should be nil")
	}
	a, b := NewLive(), NewLive()
	if NewMulti(a) != Observer(a) {
		t.Error("single observer should pass through")
	}
	m := NewMulti(a, nil, b)
	emitSample(m)
	for i, l := range []*Live{a, b} {
		if got := l.Status().Collections; got != 5 {
			t.Errorf("observer %d: collections %d, want 5", i, got)
		}
	}
}
