package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Float is a float64 whose JSON encoding is total: NaN encodes as null and
// the infinities as the strings "+Inf"/"-Inf", so event lines never fail to
// marshal and identical runs produce identical bytes.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting the encodings
// MarshalJSON produces.
func (f *Float) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null":
		*f = Float(math.NaN())
		return nil
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Event type tags, one per Observer hook.
const (
	TypeRunStart   = "run_start"
	TypePhase      = "phase"
	TypeDecision   = "decision"
	TypeCollection = "collection"
	TypeFault      = "fault"
	TypeCheckpoint = "checkpoint"
	TypeProgress   = "progress"
	TypeRunEnd     = "run_end"
)

// EventTypes lists every valid event type tag.
func EventTypes() []string {
	return []string{TypeRunStart, TypePhase, TypeDecision, TypeCollection,
		TypeFault, TypeCheckpoint, TypeProgress, TypeRunEnd}
}

// Envelope is one decoded JSONL line: the schema version, a sequence number
// assigned in emission order, the event type tag, and exactly one non-nil
// payload field matching the tag.
type Envelope struct {
	V    int    `json:"v"`
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	RunStart   *RunStart       `json:"run_start,omitempty"`
	Phase      *PhaseChange    `json:"phase,omitempty"`
	Decision   *Decision       `json:"decision,omitempty"`
	Collection *Collection     `json:"collection,omitempty"`
	Fault      *Fault          `json:"fault,omitempty"`
	Checkpoint *CheckpointMark `json:"checkpoint,omitempty"`
	Progress   *Progress       `json:"progress,omitempty"`
	RunEnd     *RunEnd         `json:"run_end,omitempty"`
}

// Validate checks the envelope's structural invariants: a known schema
// version, a known type tag, and a payload that matches the tag.
func (e *Envelope) Validate() error {
	if e.V != SchemaVersion {
		return fmt.Errorf("obs: unknown schema version %d (have %d)", e.V, SchemaVersion)
	}
	payloads := map[string]bool{
		TypeRunStart:   e.RunStart != nil,
		TypePhase:      e.Phase != nil,
		TypeDecision:   e.Decision != nil,
		TypeCollection: e.Collection != nil,
		TypeFault:      e.Fault != nil,
		TypeCheckpoint: e.Checkpoint != nil,
		TypeProgress:   e.Progress != nil,
		TypeRunEnd:     e.RunEnd != nil,
	}
	present, ok := payloads[e.Type]
	if !ok {
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	if !present {
		return fmt.Errorf("obs: event %d typed %q carries no %q payload", e.Seq, e.Type, e.Type)
	}
	n := 0
	for _, p := range payloads {
		if p {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("obs: event %d carries %d payloads; want exactly one", e.Seq, n)
	}
	return nil
}

// JSONLWriter is an Observer that appends one JSON object per event to an
// io.Writer. The encoding is versioned (every line carries SchemaVersion)
// and byte-deterministic: identical runs produce identical files because
// every field derives from simulated state and encoding/json writes struct
// fields in declaration order. The writer buffers; call Close (or at least
// Flush) before reading the output.
type JSONLWriter struct {
	bw  *bufio.Writer
	c   io.Closer // non-nil when the writer owns the underlying file
	seq uint64
	err error // first write error; subsequent events are dropped
}

// NewJSONLWriter wraps w. The caller retains ownership of w; Close only
// flushes.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		jw.c = c
	}
	return jw
}

// Err returns the first error encountered while writing, if any. Observer
// hooks cannot return errors, so emission failures are latched here for the
// caller to check at Close time.
func (w *JSONLWriter) Err() error { return w.err }

// Flush flushes buffered lines to the underlying writer.
func (w *JSONLWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
// It returns the first error seen over the writer's whole life.
func (w *JSONLWriter) Close() error {
	ferr := w.bw.Flush()
	var cerr error
	if w.c != nil {
		cerr = w.c.Close()
	}
	if w.err != nil {
		return w.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

func (w *JSONLWriter) emit(env Envelope) {
	if w.err != nil {
		return
	}
	env.V = SchemaVersion
	env.Seq = w.seq
	w.seq++
	b, err := json.Marshal(&env)
	if err != nil {
		w.err = fmt.Errorf("obs: encoding event %d: %w", env.Seq, err)
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.err = w.bw.WriteByte('\n')
}

// ObserveRunStart implements Observer.
func (w *JSONLWriter) ObserveRunStart(e RunStart) { w.emit(Envelope{Type: TypeRunStart, RunStart: &e}) }

// ObservePhase implements Observer.
func (w *JSONLWriter) ObservePhase(e PhaseChange) { w.emit(Envelope{Type: TypePhase, Phase: &e}) }

// ObserveDecision implements Observer.
func (w *JSONLWriter) ObserveDecision(e Decision) { w.emit(Envelope{Type: TypeDecision, Decision: &e}) }

// ObserveCollection implements Observer.
func (w *JSONLWriter) ObserveCollection(e Collection) {
	w.emit(Envelope{Type: TypeCollection, Collection: &e})
}

// ObserveFault implements Observer.
func (w *JSONLWriter) ObserveFault(e Fault) { w.emit(Envelope{Type: TypeFault, Fault: &e}) }

// ObserveCheckpoint implements Observer.
func (w *JSONLWriter) ObserveCheckpoint(e CheckpointMark) {
	w.emit(Envelope{Type: TypeCheckpoint, Checkpoint: &e})
}

// ObserveProgress implements Observer.
func (w *JSONLWriter) ObserveProgress(e Progress) { w.emit(Envelope{Type: TypeProgress, Progress: &e}) }

// ObserveRunEnd implements Observer.
func (w *JSONLWriter) ObserveRunEnd(e RunEnd) { w.emit(Envelope{Type: TypeRunEnd, RunEnd: &e}) }

// Reader decodes a JSONL event stream line by line.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r. Lines up to 1 MiB are accepted.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next event envelope, io.EOF at end of stream, or an
// error describing the offending line. Blank lines are skipped.
func (r *Reader) Read() (*Envelope, error) {
	for r.sc.Scan() {
		r.line++
		// Scanner.Bytes aliases the scan buffer — no per-line copy; Unmarshal
		// copies what the envelope keeps.
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		//lint:allow hotalloc the envelope is the product: the caller retains it
		var env Envelope
		//lint:allow hotbox json.Unmarshal takes its target as any
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", r.line, err)
		}
		return &env, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: line %d: %w", r.line, err)
	}
	return nil, io.EOF
}

// Line reports the line number of the most recently read event.
func (r *Reader) Line() int { return r.line }

// ReadAll decodes and validates every event in the stream. Sequence numbers
// must start at zero and increase by one; the schema version and type/
// payload pairing of every line must validate.
func ReadAll(rd io.Reader) ([]*Envelope, error) {
	r := NewReader(rd)
	var out []*Envelope
	for {
		env, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if err := env.Validate(); err != nil {
			return out, fmt.Errorf("obs: line %d: %w", r.Line(), err)
		}
		if want := uint64(len(out)); env.Seq != want {
			return out, fmt.Errorf("obs: line %d: sequence %d, want %d", r.Line(), env.Seq, want)
		}
		out = append(out, env)
	}
}
