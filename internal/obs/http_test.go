package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	live := NewLive()
	emitSample(live)
	srv := httptest.NewServer(Handler(live))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/healthz content type %q", ctype)
	}

	code, ctype, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE " + MetricEvents + " counter",
		MetricCollections + " 1",
		MetricFaults + " 1",
		"# TYPE " + MetricIntervalHist + " histogram",
		MetricIntervalHist + `_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, ctype, body = get(t, srv, "/statusz")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/statusz: %d %q", code, ctype)
	}
	var st struct {
		Status
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Running {
		t.Error("/statusz: run ended but still reported running")
	}
	if st.Policy != "saga(10%,fgs-hb(0.80))" || st.Collections != 5 {
		t.Errorf("/statusz: policy %q collections %d", st.Policy, st.Collections)
	}
	if st.Final == nil || st.Final.Events != 2000 {
		t.Errorf("/statusz: final summary missing or wrong: %+v", st.Final)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("/statusz: negative uptime %v", st.UptimeSeconds)
	}

	code, _, body = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d %q", code, body)
	}
	code, _, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/: %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	live := NewLive()
	bound, stop, err := ListenAndServe("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over listener: %d", resp.StatusCode)
	}
}
