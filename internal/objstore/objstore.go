// Package objstore implements the logical object model used throughout the
// simulator: objects identified by OIDs, carrying a class, a byte size, and a
// fixed set of pointer slots to other objects.
//
// The object store is purely logical: it knows nothing about pages,
// partitions, or I/O. The physical placement of objects is the job of
// package storage; reachability-based reclamation is the job of package gc.
// Keeping the layers separate mirrors the structure of the simulation system
// described in Cook, Wolf, Zorn (CU-CS-647-93) that the paper builds on.
package objstore

import (
	"fmt"
	"slices"
)

// OID identifies an object for its entire lifetime. OIDs are never reused.
// The zero OID is reserved and means "no object" (a nil pointer slot).
type OID uint64

// NilOID is the distinguished null object identifier.
const NilOID OID = 0

// IsNil reports whether the OID is the distinguished null identifier.
func (o OID) IsNil() bool { return o == NilOID }

// String formats the OID for diagnostics.
func (o OID) String() string {
	if o == NilOID {
		return "nil"
	}
	return fmt.Sprintf("oid:%d", uint64(o))
}

// Class tags an object with its schema type. Classes matter only for
// diagnostics and for workload generators that assign per-class sizes.
type Class uint8

// Classes used by the OO7 workload. User workloads may define their own
// values; the object store treats Class as opaque.
const (
	ClassUnknown Class = iota
	ClassModule
	ClassAssembly
	ClassCompositePart
	ClassAtomicPart
	ClassConnection
	ClassDocument
	ClassManual
)

var classNames = map[Class]string{
	ClassUnknown:       "unknown",
	ClassModule:        "module",
	ClassAssembly:      "assembly",
	ClassCompositePart: "composite",
	ClassAtomicPart:    "atomic",
	ClassConnection:    "connection",
	ClassDocument:      "document",
	ClassManual:        "manual",
}

// String returns a human-readable class name.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Object is a logical database object: a size in bytes and pointer slots.
// The slot array has fixed length per object; a slot holds NilOID when empty.
type Object struct {
	OID   OID
	Class Class
	Size  int   // total size in bytes, including pointer slots
	Slots []OID // outgoing pointers
}

// Clone returns a deep copy of the object (slots are copied).
func (o *Object) Clone() *Object {
	c := *o
	c.Slots = append([]OID(nil), o.Slots...)
	return &c
}

// Store is the object table: the set of all live-or-garbage objects known to
// the database, plus the persistent root set. A Store is not safe for
// concurrent use; the simulator is single-threaded by design (the paper
// assumes the database is locked during collection).
type Store struct {
	objects map[OID]*Object
	roots   map[OID]struct{}
	nextOID OID

	totalBytes int // sum of sizes of all objects present in the table

	// iterScratch is ForEach's reusable sorted-OID buffer. ForEach does not
	// hand it to the callback, so the only constraint is that callbacks must
	// not call ForEach recursively.
	iterScratch []OID
}

// NewStore returns an empty object store.
func NewStore() *Store {
	return &Store{
		objects: make(map[OID]*Object),
		roots:   make(map[OID]struct{}),
		nextOID: 1,
	}
}

// NextOID returns the OID that the next Create call will assign.
func (s *Store) NextOID() OID { return s.nextOID }

// AdvanceNextOID raises the next-assigned OID to at least n. Crash
// recovery needs it: the reclaimed objects may have held the highest OIDs,
// so recreating the survivors alone would rewind allocation into a range
// the durable log has already seen.
func (s *Store) AdvanceNextOID(n OID) {
	if n > s.nextOID {
		s.nextOID = n
	}
}

// Len returns the number of objects in the table.
func (s *Store) Len() int { return len(s.objects) }

// TotalBytes returns the sum of the sizes of every object in the table,
// whether live or garbage. This is the "occupied bytes" notion of database
// size used by the SAGA policy targets.
func (s *Store) TotalBytes() int { return s.totalBytes }

// Create allocates a new object with the given class, size and slot count,
// assigns it a fresh OID and enters it in the table. All slots start nil.
func (s *Store) Create(class Class, size, nslots int) (*Object, error) {
	if size < 0 {
		return nil, fmt.Errorf("objstore: negative object size %d", size)
	}
	if nslots < 0 {
		return nil, fmt.Errorf("objstore: negative slot count %d", nslots)
	}
	//lint:allow hotalloc the allocation is the object being created; it lives in the table
	o := &Object{
		OID:   s.nextOID,
		Class: class,
		Size:  size,
		//lint:allow hotalloc slot array lives as long as the object
		Slots: make([]OID, nslots),
	}
	s.nextOID++
	s.objects[o.OID] = o
	s.totalBytes += size
	return o, nil
}

// CreateWithOID enters an object with a caller-chosen OID, used when
// replaying traces whose OIDs were assigned by the generator. It returns an
// error if the OID is nil or already present. The internal OID counter is
// advanced past the given OID so later Create calls cannot collide.
func (s *Store) CreateWithOID(oid OID, class Class, size, nslots int) (*Object, error) {
	if oid.IsNil() {
		return nil, fmt.Errorf("objstore: cannot create object with nil OID")
	}
	if _, dup := s.objects[oid]; dup {
		return nil, fmt.Errorf("objstore: duplicate OID %v", oid)
	}
	if size < 0 || nslots < 0 {
		return nil, fmt.Errorf("objstore: invalid size %d or slot count %d", size, nslots)
	}
	//lint:allow hotalloc the allocation is the object being created; it lives in the table
	o := &Object{OID: oid, Class: class, Size: size, Slots: make([]OID, nslots)}
	s.objects[oid] = o
	s.totalBytes += size
	if oid >= s.nextOID {
		s.nextOID = oid + 1
	}
	return o, nil
}

// Get returns the object with the given OID, or nil if absent.
func (s *Store) Get(oid OID) *Object {
	return s.objects[oid]
}

// Remove deletes an object from the table (after it has been reclaimed by
// the collector). Removing an absent OID is an error; reclaiming the same
// object twice indicates a collector bug.
func (s *Store) Remove(oid OID) error {
	o := s.objects[oid]
	if o == nil {
		return fmt.Errorf("objstore: remove of absent object %v", oid)
	}
	delete(s.objects, oid)
	delete(s.roots, oid)
	s.totalBytes -= o.Size
	return nil
}

// SetSlot overwrites pointer slot i of the object src to point at dst
// (which may be NilOID). It returns the previous slot value.
func (s *Store) SetSlot(src OID, i int, dst OID) (old OID, err error) {
	o := s.objects[src]
	if o == nil {
		return NilOID, fmt.Errorf("objstore: set slot on absent object %v", src)
	}
	if i < 0 || i >= len(o.Slots) {
		return NilOID, fmt.Errorf("objstore: slot %d out of range [0,%d) on %v", i, len(o.Slots), src)
	}
	if !dst.IsNil() {
		if _, ok := s.objects[dst]; !ok {
			return NilOID, fmt.Errorf("objstore: slot target %v does not exist", dst)
		}
	}
	old = o.Slots[i]
	o.Slots[i] = dst
	return old, nil
}

// AddRoot marks an object as a persistent root. Roots are always reachable.
func (s *Store) AddRoot(oid OID) error {
	if _, ok := s.objects[oid]; !ok {
		return fmt.Errorf("objstore: cannot root absent object %v", oid)
	}
	s.roots[oid] = struct{}{}
	return nil
}

// RemoveRoot clears the root mark from an object. It is not an error if the
// object was not a root.
func (s *Store) RemoveRoot(oid OID) {
	delete(s.roots, oid)
}

// IsRoot reports whether the object is in the persistent root set.
func (s *Store) IsRoot(oid OID) bool {
	_, ok := s.roots[oid]
	return ok
}

// NumRoots returns the size of the persistent root set without building the
// sorted slice Roots returns — the form statistics paths should use.
func (s *Store) NumRoots() int { return len(s.roots) }

// Roots returns the persistent root set in ascending OID order.
func (s *Store) Roots() []OID {
	out := make([]OID, 0, len(s.roots))
	for oid := range s.roots {
		out = append(out, oid)
	}
	slices.Sort(out)
	return out
}

// ForEach calls fn for every object in the table in ascending OID order.
// The order is deterministic so that simulation replay is reproducible.
// The callback must not call ForEach (the sorted index is shared scratch).
func (s *Store) ForEach(fn func(*Object)) {
	oids := s.iterScratch[:0]
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	s.iterScratch = oids
	slices.Sort(oids)
	for _, oid := range oids {
		fn(s.objects[oid])
	}
}

// Reachable computes the set of objects reachable from the persistent roots
// by breadth-first traversal of pointer slots. It is O(objects) and intended
// for validation, statistics, and tests — not for the simulation fast path.
func (s *Store) Reachable() map[OID]struct{} {
	//lint:allow hotalloc the reachable set is the product, returned to the caller
	seen := make(map[OID]struct{}, len(s.objects))
	// Seed from the roots in sorted order so the traversal order — and
	// therefore any caller that iterates the queue's side effects — is
	// deterministic. The queue is sized for the whole table up front.
	//lint:allow hotalloc validation-path whole-table scan; the queue is sized once per call
	queue := make([]OID, 0, len(s.objects))
	for oid := range s.roots {
		queue = append(queue, oid)
	}
	slices.Sort(queue)
	for _, oid := range queue {
		seen[oid] = struct{}{}
	}
	for head := 0; head < len(queue); head++ {
		o := s.objects[queue[head]]
		if o == nil {
			continue
		}
		for _, t := range o.Slots {
			if t.IsNil() {
				continue
			}
			if _, ok := seen[t]; ok {
				continue
			}
			if _, exists := s.objects[t]; !exists {
				continue
			}
			seen[t] = struct{}{}
			queue = append(queue, t)
		}
	}
	return seen
}

// GarbageBytes returns the number of bytes occupied by objects that are not
// reachable from the roots. Like Reachable, this is a whole-database scan
// meant for validation; the simulator tracks garbage incrementally.
func (s *Store) GarbageBytes() int {
	live := s.Reachable()
	garb := 0
	for oid, o := range s.objects {
		if _, ok := live[oid]; !ok {
			garb += o.Size
		}
	}
	return garb
}

// Stats summarizes the object table for diagnostics.
type Stats struct {
	Objects    int
	TotalBytes int
	Roots      int
	ByClass    map[Class]ClassStats
}

// ClassStats summarizes one class within Stats.
type ClassStats struct {
	Count int
	Bytes int
}

// Stats computes a summary of the object table.
func (s *Store) Stats() Stats {
	st := Stats{
		Objects:    len(s.objects),
		TotalBytes: s.totalBytes,
		Roots:      len(s.roots),
		ByClass:    make(map[Class]ClassStats),
	}
	for _, o := range s.objects {
		cs := st.ByClass[o.Class]
		cs.Count++
		cs.Bytes += o.Size
		st.ByClass[o.Class] = cs
	}
	return st
}

// AverageObjectSize returns the mean object size in bytes, or 0 for an empty
// store. The paper reports ≈133 bytes for the OO7 Small' database.
func (s *Store) AverageObjectSize() float64 {
	if len(s.objects) == 0 {
		return 0
	}
	return float64(s.totalBytes) / float64(len(s.objects))
}

// InDegrees computes, for every object, the number of pointer slots in other
// objects that reference it. Used to validate the connectivity claims of the
// OO7 generator (average connectivity ≈ 4 at NumConnPerAtomic = 3).
func (s *Store) InDegrees() map[OID]int {
	in := make(map[OID]int, len(s.objects))
	for oid := range s.objects {
		in[oid] = 0
	}
	for _, o := range s.objects {
		for _, t := range o.Slots {
			if !t.IsNil() {
				if _, ok := s.objects[t]; ok {
					in[t]++
				}
			}
		}
	}
	return in
}
