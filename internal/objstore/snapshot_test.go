package objstore

import (
	"reflect"
	"testing"
)

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassModule, 64, 2)
	b := mustCreate(t, s, ClassAtomicPart, 20, 1)
	c := mustCreate(t, s, ClassAtomicPart, 30, 0)
	if err := s.AddRoot(a.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetSlot(a.OID, 0, b.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetSlot(b.OID, 0, c.OID); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(c.OID); err != nil {
		t.Fatal(err)
	}

	st := s.Snapshot()
	r, err := RestoreStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), st) {
		t.Fatalf("snapshot round trip differs:\norig     %+v\nrestored %+v", st, r.Snapshot())
	}
	if r.NextOID() != s.NextOID() {
		t.Fatalf("NextOID = %v, want %v", r.NextOID(), s.NextOID())
	}
	// Identical subsequent behavior: the next created object gets the same OID.
	so := mustCreate(t, s, ClassDocument, 5, 0)
	ro := mustCreate(t, r, ClassDocument, 5, 0)
	if so.OID != ro.OID {
		t.Fatalf("post-restore OID %v, want %v", ro.OID, so.OID)
	}
}

func TestRestoreStoreRejectsCorruptSnapshot(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassModule, 64, 0)
	if err := s.AddRoot(a.OID); err != nil {
		t.Fatal(err)
	}
	good := s.Snapshot()

	bad := *good
	bad.Objects = append(append([]ObjectState(nil), good.Objects...), good.Objects[0])
	if _, err := RestoreStore(&bad); err == nil {
		t.Error("duplicate OID accepted")
	}

	bad = *good
	bad.Roots = []OID{999}
	if _, err := RestoreStore(&bad); err == nil {
		t.Error("root of absent object accepted")
	}

	bad = *good
	bad.NextOID = 1
	if _, err := RestoreStore(&bad); err == nil {
		t.Error("NextOID below existing objects accepted")
	}

	if _, err := RestoreStore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
