package objstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCreate(t *testing.T, s *Store, class Class, size, nslots int) *Object {
	t.Helper()
	o, err := s.Create(class, size, nslots)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestCreateAssignsSequentialOIDs(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassAtomicPart, 100, 2)
	b := mustCreate(t, s, ClassConnection, 50, 1)
	if a.OID != 1 || b.OID != 2 {
		t.Fatalf("OIDs = %v, %v; want 1, 2", a.OID, b.OID)
	}
	if s.NextOID() != 3 {
		t.Fatalf("NextOID = %v, want 3", s.NextOID())
	}
	if s.Len() != 2 || s.TotalBytes() != 150 {
		t.Fatalf("Len=%d TotalBytes=%d, want 2/150", s.Len(), s.TotalBytes())
	}
}

func TestCreateWithOID(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateWithOID(NilOID, ClassDocument, 10, 0); err == nil {
		t.Error("nil OID accepted")
	}
	o, err := s.CreateWithOID(7, ClassDocument, 10, 0)
	if err != nil || o.OID != 7 {
		t.Fatalf("CreateWithOID(7) = %v, %v", o, err)
	}
	if _, err := s.CreateWithOID(7, ClassDocument, 10, 0); err == nil {
		t.Error("duplicate OID accepted")
	}
	if _, err := s.CreateWithOID(9, ClassDocument, -1, 0); err == nil {
		t.Error("negative size accepted")
	}
	// Counter advances past explicit OIDs.
	if next := mustCreate(t, s, ClassDocument, 1, 0); next.OID != 8 {
		t.Errorf("Create after CreateWithOID(7) got OID %v, want 8", next.OID)
	}
}

func TestSetSlot(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassAtomicPart, 10, 2)
	b := mustCreate(t, s, ClassAtomicPart, 10, 0)

	old, err := s.SetSlot(a.OID, 0, b.OID)
	if err != nil || old != NilOID {
		t.Fatalf("SetSlot = %v, %v", old, err)
	}
	old, err = s.SetSlot(a.OID, 0, NilOID)
	if err != nil || old != b.OID {
		t.Fatalf("second SetSlot = %v, %v; want %v", old, err, b.OID)
	}
	if _, err := s.SetSlot(a.OID, 2, b.OID); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := s.SetSlot(a.OID, -1, b.OID); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := s.SetSlot(999, 0, b.OID); err == nil {
		t.Error("absent source accepted")
	}
	if _, err := s.SetSlot(a.OID, 0, 999); err == nil {
		t.Error("absent target accepted")
	}
}

func TestRemove(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassDocument, 40, 0)
	if err := s.AddRoot(a.OID); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(a.OID); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.TotalBytes() != 0 {
		t.Errorf("after remove: Len=%d TotalBytes=%d", s.Len(), s.TotalBytes())
	}
	if s.IsRoot(a.OID) {
		t.Error("removed object still a root")
	}
	if err := s.Remove(a.OID); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRoots(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassModule, 10, 0)
	b := mustCreate(t, s, ClassModule, 10, 0)
	if err := s.AddRoot(b.OID); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot(a.OID); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot(999); err == nil {
		t.Error("rooting absent object accepted")
	}
	roots := s.Roots()
	if len(roots) != 2 || roots[0] != a.OID || roots[1] != b.OID {
		t.Errorf("Roots() = %v, want sorted [%v %v]", roots, a.OID, b.OID)
	}
	s.RemoveRoot(a.OID)
	if s.IsRoot(a.OID) || !s.IsRoot(b.OID) {
		t.Error("RemoveRoot wrong effect")
	}
	s.RemoveRoot(a.OID) // idempotent
}

// buildChain creates root -> o1 -> o2 -> ... -> on.
func buildChain(s *Store, n int) []OID {
	oids := make([]OID, n)
	for i := range oids {
		o, err := s.Create(ClassAtomicPart, 10, 1)
		if err != nil {
			panic(err)
		}
		oids[i] = o.OID
		if i > 0 {
			if _, err := s.SetSlot(oids[i-1], 0, o.OID); err != nil {
				panic(err)
			}
		}
	}
	if err := s.AddRoot(oids[0]); err != nil {
		panic(err)
	}
	return oids
}

func TestReachable(t *testing.T) {
	s := NewStore()
	chain := buildChain(s, 5)
	orphan := mustCreate(t, s, ClassDocument, 99, 0)

	live := s.Reachable()
	if len(live) != 5 {
		t.Fatalf("reachable = %d objects, want 5", len(live))
	}
	if _, ok := live[orphan.OID]; ok {
		t.Error("orphan reported reachable")
	}
	if s.GarbageBytes() != 99 {
		t.Errorf("GarbageBytes = %d, want 99", s.GarbageBytes())
	}

	// Cut the chain in the middle: the tail becomes garbage.
	if _, err := s.SetSlot(chain[1], 0, NilOID); err != nil {
		t.Fatal(err)
	}
	live = s.Reachable()
	if len(live) != 2 {
		t.Errorf("after cut: reachable = %d, want 2", len(live))
	}
	if s.GarbageBytes() != 99+30 {
		t.Errorf("after cut: GarbageBytes = %d, want 129", s.GarbageBytes())
	}
}

func TestReachableHandlesCycles(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassAtomicPart, 10, 1)
	b := mustCreate(t, s, ClassAtomicPart, 10, 1)
	if _, err := s.SetSlot(a.OID, 0, b.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetSlot(b.OID, 0, a.OID); err != nil {
		t.Fatal(err)
	}
	// Unrooted cycle: nothing reachable, everything garbage.
	if len(s.Reachable()) != 0 {
		t.Error("unrooted cycle reported reachable")
	}
	if s.GarbageBytes() != 20 {
		t.Errorf("GarbageBytes = %d, want 20", s.GarbageBytes())
	}
	// Root one member: both reachable.
	if err := s.AddRoot(a.OID); err != nil {
		t.Fatal(err)
	}
	if len(s.Reachable()) != 2 {
		t.Error("rooted cycle not fully reachable")
	}
}

func TestInDegrees(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassAtomicPart, 10, 2)
	b := mustCreate(t, s, ClassAtomicPart, 10, 2)
	c := mustCreate(t, s, ClassAtomicPart, 10, 0)
	for _, e := range [][3]interface{}{{a.OID, 0, b.OID}, {a.OID, 1, c.OID}, {b.OID, 0, c.OID}} {
		if _, err := s.SetSlot(e[0].(OID), e[1].(int), e[2].(OID)); err != nil {
			t.Fatal(err)
		}
	}
	in := s.InDegrees()
	if in[a.OID] != 0 || in[b.OID] != 1 || in[c.OID] != 2 {
		t.Errorf("InDegrees = %v", in)
	}
}

func TestStatsAndAverage(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, ClassAtomicPart, 100, 0)
	mustCreate(t, s, ClassAtomicPart, 200, 0)
	mustCreate(t, s, ClassDocument, 300, 0)
	st := s.Stats()
	if st.Objects != 3 || st.TotalBytes != 600 {
		t.Errorf("Stats = %+v", st)
	}
	if st.ByClass[ClassAtomicPart].Count != 2 || st.ByClass[ClassAtomicPart].Bytes != 300 {
		t.Errorf("atomic class stats = %+v", st.ByClass[ClassAtomicPart])
	}
	if got := s.AverageObjectSize(); got != 200 {
		t.Errorf("AverageObjectSize = %v, want 200", got)
	}
	if NewStore().AverageObjectSize() != 0 {
		t.Error("empty store average not 0")
	}
}

func TestForEachDeterministicOrder(t *testing.T) {
	s := NewStore()
	for i := 0; i < 50; i++ {
		mustCreate(t, s, ClassConnection, 1, 0)
	}
	var prev OID
	s.ForEach(func(o *Object) {
		if o.OID <= prev {
			t.Fatalf("ForEach out of order: %v after %v", o.OID, prev)
		}
		prev = o.OID
	})
}

func TestClone(t *testing.T) {
	s := NewStore()
	a := mustCreate(t, s, ClassAtomicPart, 10, 2)
	b := mustCreate(t, s, ClassAtomicPart, 10, 0)
	if _, err := s.SetSlot(a.OID, 0, b.OID); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	c.Slots[0] = NilOID
	if a.Slots[0] != b.OID {
		t.Error("Clone shares slot storage with original")
	}
}

// randomStore builds a store with n objects and random edges from seed.
func randomStore(seed int64, n int) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := NewStore()
	oids := make([]OID, 0, n)
	for i := 0; i < n; i++ {
		o, err := s.Create(ClassAtomicPart, 1+rng.Intn(100), rng.Intn(4))
		if err != nil {
			panic(err)
		}
		oids = append(oids, o.OID)
	}
	for _, oid := range oids {
		o := s.Get(oid)
		for i := range o.Slots {
			if rng.Intn(2) == 0 {
				if _, err := s.SetSlot(oid, i, oids[rng.Intn(len(oids))]); err != nil {
					panic(err)
				}
			}
		}
	}
	for i := 0; i < 1+n/10; i++ {
		_ = s.AddRoot(oids[rng.Intn(len(oids))])
	}
	return s
}

// Property: the reachable set is closed under pointer traversal and
// contains every root.
func TestReachableClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomStore(seed, 60)
		live := s.Reachable()
		for _, r := range s.Roots() {
			if _, ok := live[r]; !ok {
				return false
			}
		}
		for oid := range live {
			for _, tgt := range s.Get(oid).Slots {
				if tgt.IsNil() {
					continue
				}
				if _, ok := live[tgt]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: garbage bytes + live bytes == total bytes.
func TestGarbagePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomStore(seed, 60)
		live := s.Reachable()
		liveBytes := 0
		for oid := range live {
			liveBytes += s.Get(oid).Size
		}
		return liveBytes+s.GarbageBytes() == s.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: removing a non-root object never increases the reachable set.
func TestRemoveMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomStore(seed, 40)
		before := len(s.Reachable())
		// Remove the garbage objects; reachable set must be unchanged.
		live := s.Reachable()
		var garbage []OID
		s.ForEach(func(o *Object) {
			if _, ok := live[o.OID]; !ok {
				garbage = append(garbage, o.OID)
			}
		})
		for _, oid := range garbage {
			// Clear dangling references from other garbage first is not
			// needed: Reachable skips absent targets.
			if err := s.Remove(oid); err != nil {
				return false
			}
		}
		return len(s.Reachable()) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
