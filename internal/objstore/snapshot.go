package objstore

import (
	"fmt"
	"sort"
)

// ObjectState is one object's checkpointable image.
type ObjectState struct {
	OID   OID
	Class Class
	Size  int
	Slots []OID
}

// StoreSnapshot is a checkpointable image of a Store, with objects and roots
// in ascending OID order so the encoded form is deterministic.
type StoreSnapshot struct {
	Objects []ObjectState
	Roots   []OID
	NextOID OID
}

// Snapshot captures the full object table and root set for checkpointing.
func (s *Store) Snapshot() *StoreSnapshot {
	st := &StoreSnapshot{NextOID: s.nextOID}
	st.Objects = make([]ObjectState, 0, len(s.objects))
	for _, o := range s.objects {
		st.Objects = append(st.Objects, ObjectState{
			OID:   o.OID,
			Class: o.Class,
			Size:  o.Size,
			Slots: append([]OID(nil), o.Slots...),
		})
	}
	sort.Slice(st.Objects, func(i, j int) bool { return st.Objects[i].OID < st.Objects[j].OID })
	st.Roots = s.Roots()
	return st
}

// RestoreStore rebuilds a Store from a snapshot, validating it first.
func RestoreStore(st *StoreSnapshot) (*Store, error) {
	if st == nil {
		return nil, fmt.Errorf("objstore: nil store snapshot")
	}
	s := NewStore()
	for _, os := range st.Objects {
		if _, err := s.CreateWithOID(os.OID, os.Class, os.Size, len(os.Slots)); err != nil {
			return nil, err
		}
		copy(s.objects[os.OID].Slots, os.Slots)
	}
	for _, r := range st.Roots {
		if err := s.AddRoot(r); err != nil {
			return nil, err
		}
	}
	if st.NextOID < s.nextOID {
		return nil, fmt.Errorf("objstore: snapshot NextOID %v below highest object OID", st.NextOID)
	}
	s.nextOID = st.NextOID
	return s, nil
}
