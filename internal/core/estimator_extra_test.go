package core

import (
	"math"
	"testing"

	"odbgc/internal/gc"
	"odbgc/internal/storage"
)

func TestFGSWindowMean(t *testing.T) {
	e, err := NewFGSWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if e.GPPO() != 0 {
		t.Errorf("empty GPPO = %v", e.GPPO())
	}
	h := &fakeHeap{sumPO: 10}
	for _, reclaimed := range []int{100, 200, 300} { // PO 1 each
		e.ObserveCollection(h, collRes(reclaimed, 0, 0, 1))
	}
	if got := e.GPPO(); got != 200 {
		t.Errorf("GPPO = %v, want mean 200", got)
	}
	// Fourth sample evicts the first: mean(200,300,400) = 300.
	e.ObserveCollection(h, collRes(400, 0, 0, 1))
	if got := e.GPPO(); got != 300 {
		t.Errorf("GPPO = %v, want 300 after window slide", got)
	}
	if got := e.EstimateGarbage(h); got != 3000 {
		t.Errorf("estimate = %v, want 3000", got)
	}
	if _, err := NewFGSWindow(0); err == nil {
		t.Error("window 0 accepted")
	}
}

// partFakeHeap extends fakeHeap with per-partition overwrite counts.
type partFakeHeap struct {
	fakeHeap
	po map[storage.PartitionID]int
}

func (f *partFakeHeap) PartitionOverwrites(p storage.PartitionID) int { return f.po[p] }

func partCollRes(part storage.PartitionID, reclaimed, po int) gc.CollectionResult {
	return gc.CollectionResult{Partition: part, ReclaimedBytes: reclaimed, PartitionPO: po}
}

func TestFGSPerPartitionLearnsPerPartition(t *testing.T) {
	e, err := NewFGSPerPartition(0.5)
	if err != nil {
		t.Fatal(err)
	}
	h := &partFakeHeap{po: map[storage.PartitionID]int{0: 10, 1: 10}}
	h.parts = 2
	// Partition 0 yields 100 B/ow, partition 1 yields 10 B/ow.
	e.ObserveCollection(h, partCollRes(0, 1000, 10))
	e.ObserveCollection(h, partCollRes(1, 100, 10))
	// est = 100*10 + 10*10 = 1100 — NOT a single global GPPO.
	if got := e.EstimateGarbage(h); math.Abs(got-1100) > 1e-9 {
		t.Errorf("estimate = %v, want 1100", got)
	}
	// Partitions with PO but no history use the global GPPO.
	h.parts = 3
	h.po[2] = 10
	global := e.global.GPPO() // (100 then 0.5-smoothed with 10) = 55
	want := 1100 + global*10
	if got := e.EstimateGarbage(h); math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate with unseen partition = %v, want %v", got, want)
	}
	// Zero-PO partitions contribute nothing.
	h.po[0] = 0
	if got := e.EstimateGarbage(h); math.Abs(got-(100+global*10)) > 1e-9 {
		t.Errorf("estimate with cleared partition = %v", got)
	}
}

func TestFGSPerPartitionFallsBackWithoutPartitionState(t *testing.T) {
	e, err := NewFGSPerPartition(0.8)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeap{sumPO: 20}
	e.ObserveCollection(h, collRes(500, 0, 0, 10)) // GPPO 50
	// fakeHeap lacks PartitionOverwrites: global estimate 50*20.
	if got := e.EstimateGarbage(h); got != 1000 {
		t.Errorf("fallback estimate = %v, want 1000", got)
	}
	if _, err := NewFGSPerPartition(1.0); err == nil {
		t.Error("history 1.0 accepted")
	}
}

func TestNewEstimatorExtraNames(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"fgs-window", "fgs-window(8)"},
		{"fgs-pp", "fgs-pp(0.80)"},
	} {
		e, err := NewEstimator(tc.name, 0)
		if err != nil || e.Name() != tc.want {
			t.Errorf("NewEstimator(%q) = %v, %v; want %q", tc.name, e, err, tc.want)
		}
	}
	e, err := NewEstimator("fgs-window", 4)
	if err != nil || e.Name() != "fgs-window(4)" {
		t.Errorf("windowed: %v, %v", e, err)
	}
}

func TestPIControllerValidation(t *testing.T) {
	est := OracleEstimator{}
	for _, bad := range []PIConfig{
		{Frac: 0}, {Frac: 1}, {Frac: 0.1, Kp: -1}, {Frac: 0.1, DtMin: 10, DtMax: 2},
	} {
		if _, err := NewPIController(bad, est); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if _, err := NewPIController(PIConfig{Frac: 0.1}, nil); err == nil {
		t.Error("nil estimator accepted")
	}
	p, err := NewPIController(PIConfig{Frac: 0.1}, est)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Kp != 2.0 || cfg.Ki != 0.3 || cfg.BaseInterval != 200 || cfg.DtMax != 1000 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestPIControllerDirection(t *testing.T) {
	est := OracleEstimator{}
	p, err := NewPIController(PIConfig{Frac: 0.10, InitialInterval: 50}, est)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ShouldCollect(Clock{Overwrites: 50}) {
		t.Error("bootstrap ignored")
	}
	h := &fakeHeap{db: 100000}

	// At target: interval = base.
	h.actGarb = 10000
	p.AfterCollection(Clock{Overwrites: 100}, h, collRes(0, 0, 0, 0))
	atTarget := p.LastInterval()
	if atTarget != 200 {
		t.Errorf("interval at target = %d, want base 200", atTarget)
	}

	// Garbage over target: interval shrinks.
	q, _ := NewPIController(PIConfig{Frac: 0.10}, est)
	h.actGarb = 30000
	q.AfterCollection(Clock{Overwrites: 100}, h, collRes(0, 0, 0, 0))
	if q.LastInterval() >= atTarget {
		t.Errorf("over target: interval %d not below %d", q.LastInterval(), atTarget)
	}

	// Garbage under target: interval grows.
	r, _ := NewPIController(PIConfig{Frac: 0.10}, est)
	h.actGarb = 2000
	r.AfterCollection(Clock{Overwrites: 100}, h, collRes(0, 0, 0, 0))
	if r.LastInterval() <= atTarget {
		t.Errorf("under target: interval %d not above %d", r.LastInterval(), atTarget)
	}
}

func TestPIControllerIntegralEliminatesBias(t *testing.T) {
	// A persistent error accumulates in the integral term: interval keeps
	// shrinking until it clamps at DtMin.
	est := OracleEstimator{}
	p, err := NewPIController(PIConfig{Frac: 0.10}, est)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeap{db: 100000, actGarb: 15000} // fixed +50% error
	var prev uint64 = 1 << 62
	tnow := uint64(0)
	for i := 0; i < 20; i++ {
		tnow += 100
		p.AfterCollection(Clock{Overwrites: tnow}, h, collRes(0, 0, 0, 0))
		if p.LastInterval() > prev {
			t.Fatalf("interval rose (%d -> %d) under persistent positive error", prev, p.LastInterval())
		}
		prev = p.LastInterval()
	}
	// Steady state with e = +0.5 and the integral clamped at 5:
	// 200·exp(−(2.0·0.5 + 0.3·5)) ≈ 16 overwrites.
	want := uint64(200 * math.Exp(-(2.0*0.5 + 0.3*5)))
	if prev != want {
		t.Errorf("interval converged to %d, want clamped steady state %d", prev, want)
	}
}

func TestPIControllerAntiWindup(t *testing.T) {
	est := OracleEstimator{}
	p, err := NewPIController(PIConfig{Frac: 0.10, IntegralClamp: 5}, est)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeap{db: 100000, actGarb: 90000}
	tnow := uint64(0)
	for i := 0; i < 50; i++ {
		tnow += 10
		p.AfterCollection(Clock{Overwrites: tnow}, h, collRes(0, 0, 0, 0))
	}
	// After the error disappears, the clamped integral lets the controller
	// recover within a bounded number of steps rather than staying pinned.
	h.actGarb = 0
	recovered := false
	for i := 0; i < 30; i++ {
		tnow += 10
		p.AfterCollection(Clock{Overwrites: tnow}, h, collRes(0, 0, 0, 0))
		if p.LastInterval() > p.Config().DtMin {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("controller failed to recover after windup (integral clamp ineffective)")
	}
}
