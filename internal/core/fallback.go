package core

import (
	"fmt"
	"math"

	"odbgc/internal/gc"
)

// FallbackEstimator wraps a primary estimator with a simpler fallback (the
// intended pairing is FGS/HB over CGS/CB) and degrades gracefully when the
// primary's signal becomes unusable: NaN, infinite, negative, or physically
// impossible (more garbage than the database holds). After TripAfter
// consecutive bad primary readings the wrapper switches to the fallback;
// after RecoverAfter consecutive good readings it switches back. Both
// estimators observe every collection throughout, so whichever is active has
// current behavior metrics.
//
// This is the graceful-degradation half of the fault-injection story: a
// chaos-wrapped estimator (see package fault) can drop out mid-run and SAGA
// keeps regulating off the coarse signal instead of wedging.
type FallbackEstimator struct {
	primary  Estimator
	fallback Estimator

	// TripAfter and RecoverAfter are the consecutive-sample thresholds.
	tripAfter    int
	recoverAfter int

	bad     int
	good    int
	tripped bool

	trips      uint64
	recoveries uint64
}

// NewFallbackEstimator wraps primary with fallback. tripAfter and
// recoverAfter default to 1 and 3 when zero.
func NewFallbackEstimator(primary, fallback Estimator, tripAfter, recoverAfter int) (*FallbackEstimator, error) {
	if primary == nil || fallback == nil {
		return nil, fmt.Errorf("core: fallback estimator requires both a primary and a fallback")
	}
	if tripAfter < 0 || recoverAfter < 0 {
		return nil, fmt.Errorf("core: fallback thresholds must be >= 0")
	}
	if tripAfter == 0 {
		tripAfter = 1
	}
	if recoverAfter == 0 {
		recoverAfter = 3
	}
	return &FallbackEstimator{
		primary:      primary,
		fallback:     fallback,
		tripAfter:    tripAfter,
		recoverAfter: recoverAfter,
	}, nil
}

// Name implements Estimator.
func (e *FallbackEstimator) Name() string {
	return fmt.Sprintf("fallback(%s->%s)", e.primary.Name(), e.fallback.Name())
}

// Tripped reports whether the wrapper is currently serving the fallback.
func (e *FallbackEstimator) Tripped() bool { return e.tripped }

// Trips returns how many times the primary signal was abandoned.
func (e *FallbackEstimator) Trips() uint64 { return e.trips }

// Recoveries returns how many times the primary signal was re-adopted.
func (e *FallbackEstimator) Recoveries() uint64 { return e.recoveries }

// Primary returns the wrapped primary estimator.
func (e *FallbackEstimator) Primary() Estimator { return e.primary }

// Fallback returns the wrapped fallback estimator.
func (e *FallbackEstimator) Fallback() Estimator { return e.fallback }

// ObserveCollection implements Estimator: both wrapped estimators see every
// collection so the inactive one stays warm.
func (e *FallbackEstimator) ObserveCollection(h HeapState, res gc.CollectionResult) {
	e.primary.ObserveCollection(h, res)
	e.fallback.ObserveCollection(h, res)
}

// usableSignal reports whether v is a physically meaningful garbage estimate
// for the database state h.
func usableSignal(v float64, h HeapState) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return false
	}
	if db := float64(h.DatabaseBytes()); db > 0 && v > db {
		return false
	}
	return true
}

// EstimateGarbage implements Estimator with the trip/recover state machine.
// A bad primary reading is never served, even before the trip threshold: the
// threshold only governs when the wrapper commits to fallback mode (and stays
// there through RecoverAfter good readings); isolated dropouts are papered
// over with the fallback's value sample by sample.
func (e *FallbackEstimator) EstimateGarbage(h HeapState) float64 {
	p := e.primary.EstimateGarbage(h)
	usable := usableSignal(p, h)
	if usable {
		e.bad = 0
		e.good++
		if e.tripped && e.good >= e.recoverAfter {
			e.tripped = false
			e.recoveries++
		}
	} else {
		e.good = 0
		e.bad++
		if !e.tripped && e.bad >= e.tripAfter {
			e.tripped = true
			e.trips++
		}
	}
	if usable && !e.tripped {
		return p
	}
	f := e.fallback.EstimateGarbage(h)
	if !usableSignal(f, h) {
		// Both signals gone: report zero garbage rather than poison the
		// controller; the DtMax clamp bounds the resulting interval.
		return 0
	}
	return f
}
