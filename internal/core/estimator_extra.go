package core

// Additional garbage estimators beyond the two the paper details. §2.4
// notes "we have invented and investigated several such heuristics, two of
// which we describe below"; these fill in two more cells of the paper's
// state × behavior design space:
//
//   - FGSWindow: fine-grain state with a sliding-window mean behavior
//     metric instead of the exponential mean (a different realization of
//     "history behavior");
//   - FGSPerPartition: fine-grain state with *per-partition* behavior —
//     each partition remembers the garbage-per-overwrite its own last
//     collection exhibited, so partitions with systematically different
//     garbage densities (e.g. document-heavy vs connection-heavy regions)
//     no longer share one global GPPO.

import (
	"fmt"

	"odbgc/internal/gc"
	"odbgc/internal/storage"
)

// FGSWindow combines fine-grain state (Σ PO(p)) with a sliding-window mean
// of the garbage-per-pointer-overwrite samples from the last Window
// collections.
type FGSWindow struct {
	// Window is the number of recent collections whose GPPO samples are
	// averaged. Must be >= 1.
	Window int

	samples []float64
}

// NewFGSWindow returns a windowed FGS estimator.
func NewFGSWindow(window int) (*FGSWindow, error) {
	if window < 1 {
		return nil, fmt.Errorf("core: FGS window %d must be >= 1", window)
	}
	return &FGSWindow{Window: window}, nil
}

// Name implements Estimator.
func (e *FGSWindow) Name() string { return fmt.Sprintf("fgs-window(%d)", e.Window) }

// GPPO returns the current windowed garbage-per-overwrite estimate.
func (e *FGSWindow) GPPO() float64 {
	if len(e.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range e.samples {
		sum += s
	}
	return sum / float64(len(e.samples))
}

// ObserveCollection implements Estimator.
func (e *FGSWindow) ObserveCollection(_ HeapState, res gc.CollectionResult) {
	po := res.PartitionPO
	if po < 1 {
		po = 1
	}
	e.samples = append(e.samples, float64(res.ReclaimedBytes)/float64(po))
	if len(e.samples) > e.Window {
		e.samples = e.samples[1:]
	}
}

// EstimateGarbage implements Estimator.
func (e *FGSWindow) EstimateGarbage(h HeapState) float64 {
	return e.GPPO() * float64(h.SumPartitionOverwrites())
}

// PartitionedHeapState extends HeapState with per-partition fine-grain
// state, needed by FGSPerPartition. *gc.Heap implements it.
type PartitionedHeapState interface {
	HeapState
	PartitionOverwrites(p storage.PartitionID) int
}

// FGSPerPartition predicts garbage as
//
//	ActGarb = Σ_p gppo_h(p) · PO(p)
//
// where gppo_h(p) is an exponential mean of partition p's own collection
// outcomes, falling back to the global mean for partitions never collected.
// It needs PartitionedHeapState; with a plain HeapState it degrades to the
// global FGS/HB estimate.
type FGSPerPartition struct {
	// History is the exponential-mean factor, as in FGS/HB.
	History float64

	perPart map[storage.PartitionID]float64
	global  FGSHB
}

// NewFGSPerPartition returns a per-partition FGS estimator.
func NewFGSPerPartition(history float64) (*FGSPerPartition, error) {
	if history < 0 || history >= 1 {
		return nil, fmt.Errorf("core: FGS per-partition history %.4f must be in [0,1)", history)
	}
	return &FGSPerPartition{
		History: history,
		perPart: make(map[storage.PartitionID]float64),
		global:  FGSHB{History: history},
	}, nil
}

// Name implements Estimator.
func (e *FGSPerPartition) Name() string { return fmt.Sprintf("fgs-pp(%.2f)", e.History) }

// ObserveCollection implements Estimator.
func (e *FGSPerPartition) ObserveCollection(h HeapState, res gc.CollectionResult) {
	e.global.ObserveCollection(h, res)
	po := res.PartitionPO
	if po < 1 {
		po = 1
	}
	gppo := float64(res.ReclaimedBytes) / float64(po)
	if prev, ok := e.perPart[res.Partition]; ok {
		e.perPart[res.Partition] = e.History*prev + (1-e.History)*gppo
	} else {
		e.perPart[res.Partition] = gppo
	}
}

// EstimateGarbage implements Estimator.
func (e *FGSPerPartition) EstimateGarbage(h HeapState) float64 {
	ph, ok := h.(PartitionedHeapState)
	if !ok {
		return e.global.EstimateGarbage(h)
	}
	globalGPPO := e.global.GPPO()
	var est float64
	for p := 0; p < h.NumPartitions(); p++ {
		id := storage.PartitionID(p)
		po := ph.PartitionOverwrites(id)
		if po == 0 {
			continue
		}
		gppo, ok := e.perPart[id]
		if !ok {
			gppo = globalGPPO
		}
		est += gppo * float64(po)
	}
	return est
}
