// Package core implements the paper's primary contribution: collection-rate
// policies for partitioned object-database garbage collection, i.e. the
// decision of *when* to run the next collection.
//
// Three families are provided:
//
//   - FixedRate: collect every N pointer overwrites (the strawman the paper
//     shows to be unacceptable, and the policy behind Figure 1);
//   - SAIO: semi-automatic I/O policy — hold collector I/O at a requested
//     percentage of total I/O operations (§2.2);
//   - SAGA: semi-automatic garbage policy — hold database garbage at a
//     requested percentage of database size (§2.3), using a pluggable
//     garbage Estimator (§2.4).
//
// Policies observe time through a Clock with two bases: application I/O
// operations (SAIO's unit of time) and pointer overwrites (SAGA's unit of
// time; it does not advance during read-only phases, so no collections are
// scheduled when no garbage can be created).
package core

import (
	"fmt"
	"math"

	"odbgc/internal/gc"
)

// Clock is a snapshot of the simulator's cumulative counters, taken before
// each application event and after each collection.
type Clock struct {
	AppIO      uint64 // cumulative application I/O operations
	GCIO       uint64 // cumulative collector I/O operations
	Overwrites uint64 // cumulative (non-initializing) pointer overwrites
}

// HeapState is the view of the database the policies and estimators read.
// *gc.Heap implements it; tests substitute fixtures to script controller
// inputs directly.
type HeapState interface {
	// DatabaseBytes is occupied bytes, live plus garbage (SAGA's notion of
	// database size).
	DatabaseBytes() int
	// ActualGarbageBytes is the oracle's exact unreclaimed garbage.
	ActualGarbageBytes() int
	// TotalCollectedBytes is cumulative bytes reclaimed by the collector.
	TotalCollectedBytes() uint64
	// SumPartitionOverwrites is Σ_p PO(p), the FGS state total.
	SumPartitionOverwrites() int
	// NumPartitions is the allocated partition count (CGS state).
	NumPartitions() int
}

// RatePolicy decides when collections happen. The simulator consults
// ShouldCollect before applying each application event and, when it
// triggers a collection, reports the outcome through AfterCollection so the
// policy can schedule the next one.
type RatePolicy interface {
	Name() string
	// ShouldCollect reports whether a collection is due at the given time.
	ShouldCollect(now Clock) bool
	// AfterCollection informs the policy of a completed collection so it
	// can compute the next interval.
	AfterCollection(now Clock, h HeapState, res gc.CollectionResult)
}

// NeverCollect disables collection entirely: the no-GC baseline.
type NeverCollect struct{}

// Name implements RatePolicy.
func (NeverCollect) Name() string { return "never" }

// ShouldCollect implements RatePolicy.
func (NeverCollect) ShouldCollect(Clock) bool { return false }

// AfterCollection implements RatePolicy.
func (NeverCollect) AfterCollection(Clock, HeapState, gc.CollectionResult) {}

// FixedRate collects every Interval pointer overwrites — the paper's
// measure of a fixed collection rate ("a collection rate of 50, measured in
// pointer overwrites per collection"). Figure 1 sweeps Interval from 50 to
// 800.
type FixedRate struct {
	Interval uint64 // pointer overwrites between collections

	nextAt uint64
	armed  bool
}

// NewFixedRate returns a fixed-rate policy; interval must be positive.
func NewFixedRate(interval int) (*FixedRate, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: fixed-rate interval %d must be positive", interval)
	}
	return &FixedRate{Interval: uint64(interval)}, nil
}

// Name implements RatePolicy.
func (p *FixedRate) Name() string { return fmt.Sprintf("fixed(%d)", p.Interval) }

// ShouldCollect implements RatePolicy.
func (p *FixedRate) ShouldCollect(now Clock) bool {
	if !p.armed {
		p.nextAt = p.Interval
		p.armed = true
	}
	return now.Overwrites >= p.nextAt
}

// AfterCollection implements RatePolicy.
func (p *FixedRate) AfterCollection(now Clock, _ HeapState, _ gc.CollectionResult) {
	p.nextAt = now.Overwrites + p.Interval
	p.armed = true
}

// SAIOConfig parameterizes the SAIO policy.
type SAIOConfig struct {
	// Frac is the requested collector share of total I/O operations, in
	// (0,1). E.g. 0.10 asks for 10% of all I/O to be collection I/O.
	Frac float64
	// Hist is c_hist: how many past collections contribute measured I/O
	// history to the interval computation. 0 (the paper's default in
	// Figure 4) uses only the current collection's cost.
	Hist int
	// InitialInterval is the bootstrap: application I/O operations before
	// the first collection. Defaults to 100 if zero.
	InitialInterval uint64
}

// Validate checks the configuration.
func (c SAIOConfig) Validate() error {
	if c.Frac <= 0 || c.Frac >= 1 {
		return fmt.Errorf("core: SAIO_Frac %.4f must be in (0,1)", c.Frac)
	}
	if c.Hist < 0 {
		return fmt.Errorf("core: SAIO c_hist %d must be >= 0", c.Hist)
	}
	return nil
}

// SAIO is the semi-automatic I/O percentage policy (§2.2). After each
// collection it solves
//
//	(GCIO_hist + ΔGCIO) / (GCIO_hist + ΔGCIO + AppIO_hist + ΔAppIO) = Frac
//
// for ΔAppIO under the assumption ΔGCIO = CurrGCIO (successive collections
// cost about the same), giving
//
//	ΔAppIO = (GCIO_hist + CurrGCIO)·(1 − Frac)/Frac − AppIO_hist
//
// where the _hist sums span the last c_hist collections.
type SAIO struct {
	cfg SAIOConfig

	// Ring buffer of per-collection (appIO, gcIO) deltas, newest last.
	histApp []uint64
	histGC  []uint64

	lastAppIO uint64 // clock at last collection, to compute app deltas
	nextAt    uint64 // absolute AppIO at which to collect next
	armed     bool
}

// NewSAIO returns a SAIO policy.
func NewSAIO(cfg SAIOConfig) (*SAIO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialInterval == 0 {
		cfg.InitialInterval = 100
	}
	return &SAIO{cfg: cfg}, nil
}

// Name implements RatePolicy.
func (p *SAIO) Name() string { return fmt.Sprintf("saio(%.0f%%)", p.cfg.Frac*100) }

// Config returns the policy configuration.
func (p *SAIO) Config() SAIOConfig { return p.cfg }

// ShouldCollect implements RatePolicy.
func (p *SAIO) ShouldCollect(now Clock) bool {
	if !p.armed {
		p.nextAt = p.cfg.InitialInterval
		p.armed = true
	}
	return now.AppIO >= p.nextAt
}

// AfterCollection implements RatePolicy.
func (p *SAIO) AfterCollection(now Clock, _ HeapState, res gc.CollectionResult) {
	currGCIO := res.IO.GCIO()
	appDelta := now.AppIO - p.lastAppIO
	p.lastAppIO = now.AppIO
	p.armed = true

	// Maintain the c_hist window of measured per-interval costs, including
	// the collection that just finished.
	if p.cfg.Hist > 0 {
		p.histApp = append(p.histApp, appDelta)
		p.histGC = append(p.histGC, currGCIO)
		if len(p.histApp) > p.cfg.Hist {
			p.histApp = p.histApp[1:]
			p.histGC = p.histGC[1:]
		}
	}
	var histApp, histGC float64
	for _, v := range p.histApp {
		histApp += float64(v)
	}
	for _, v := range p.histGC {
		histGC += float64(v)
	}
	// ΔAppIO = (GCIO_hist + ΔGCIO)·(1−f)/f − AppIO_hist, with the paper's
	// assumption ΔGCIO = CurrGCIO. With c_hist = 0 the history sums vanish
	// and this reduces to CurrGCIO·(1−f)/f.
	interval := (histGC+float64(currGCIO))*(1-p.cfg.Frac)/p.cfg.Frac - histApp
	if interval < 1 {
		interval = 1
	}
	p.nextAt = now.AppIO + uint64(interval)
}

// SAGAConfig parameterizes the SAGA policy.
type SAGAConfig struct {
	// Frac is the requested garbage share of database size, in (0,1).
	Frac float64
	// Weight buffers the TotGarb' slope estimate from rapid change; the
	// paper sets 0.7. Must be in [0,1). Defaults to 0.7 if zero.
	Weight float64
	// DtMin and DtMax clamp the computed interval in pointer overwrites;
	// the paper uses 2 and 1000. Defaults apply if zero.
	DtMin, DtMax uint64
	// InitialInterval is the bootstrap: pointer overwrites before the first
	// collection. Defaults to 100 if zero.
	InitialInterval uint64
	// SlopeRef, when positive, switches the TotGarb' smoothing to a
	// time-weighted exponential mean: the new sample's weight becomes
	// 1 − Weight^(Δt/SlopeRef), so slope samples taken over very short
	// intervals (whose noise is amplified by the 1/Δt division) contribute
	// proportionally little, and samples spanning long intervals dominate.
	// 0 keeps the paper's per-observation formula. See the churn
	// robustness experiment for the failure mode this addresses.
	SlopeRef uint64
}

// Validate checks the configuration.
func (c SAGAConfig) Validate() error {
	if c.Frac <= 0 || c.Frac >= 1 {
		return fmt.Errorf("core: SAGA_Frac %.4f must be in (0,1)", c.Frac)
	}
	if c.Weight < 0 || c.Weight >= 1 {
		return fmt.Errorf("core: SAGA weight %.4f must be in [0,1)", c.Weight)
	}
	if c.DtMin != 0 && c.DtMax != 0 && c.DtMin > c.DtMax {
		return fmt.Errorf("core: SAGA dtMin %d > dtMax %d", c.DtMin, c.DtMax)
	}
	return nil
}

func (c *SAGAConfig) applyDefaults() {
	if c.Weight == 0 {
		c.Weight = 0.7
	}
	if c.DtMin == 0 {
		c.DtMin = 2
	}
	if c.DtMax == 0 {
		c.DtMax = 1000
	}
	if c.InitialInterval == 0 {
		c.InitialInterval = 100
	}
}

// SAGA is the semi-automatic garbage percentage policy (§2.3). After each
// collection it computes the interval (in pointer overwrites) until the
// next collection as
//
//	Δt = (CurrColl − GarbDiff(t)) / TotGarb'(t)
//
// where GarbDiff = ActGarb − TargetGarb, TargetGarb = DBSize·Frac, and
// TotGarb' is an exponentially weighted slope of cumulative garbage
// creation. ActGarb comes from the configured Estimator, so estimator error
// propagates into the controller exactly as in the paper.
type SAGA struct {
	cfg SAGAConfig
	est Estimator

	slope     float64 // TotGarb'(t) estimate, bytes per overwrite
	haveSlope bool
	prevT     uint64  // overwrite clock at previous slope sample
	prevTot   float64 // TotGarb estimate at previous slope sample
	havePrev  bool

	nextAt uint64
	armed  bool

	// Diagnostics exposed for the time-varying figures.
	lastEstimate float64
	lastTarget   float64
	lastInterval uint64
	clampedMin   uint64 // how many times DtMin clamped the interval
	clampedMax   uint64 // how many times DtMax clamped the interval
	badSignals   uint64 // estimator outputs rejected as NaN/Inf/negative
}

// NewSAGA returns a SAGA policy using the given estimator.
func NewSAGA(cfg SAGAConfig, est Estimator) (*SAGA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, fmt.Errorf("core: SAGA requires an estimator")
	}
	cfg.applyDefaults()
	return &SAGA{cfg: cfg, est: est}, nil
}

// Name implements RatePolicy.
func (p *SAGA) Name() string {
	return fmt.Sprintf("saga(%.0f%%,%s)", p.cfg.Frac*100, p.est.Name())
}

// Config returns the policy configuration (with defaults applied).
func (p *SAGA) Config() SAGAConfig { return p.cfg }

// Estimator returns the garbage estimator in use.
func (p *SAGA) Estimator() Estimator { return p.est }

// LastEstimate returns the estimator's garbage bytes at the last collection.
func (p *SAGA) LastEstimate() float64 { return p.lastEstimate }

// LastTarget returns the target garbage bytes at the last collection.
func (p *SAGA) LastTarget() float64 { return p.lastTarget }

// LastInterval returns the last scheduled interval in overwrites.
func (p *SAGA) LastInterval() uint64 { return p.lastInterval }

// ClampCounts reports how often DtMin and DtMax limited the interval; the
// paper notes the clamps are rarely needed in practice.
func (p *SAGA) ClampCounts() (min, max uint64) { return p.clampedMin, p.clampedMax }

// LastSlope returns the smoothed TotGarb'(t) estimate in bytes/overwrite.
func (p *SAGA) LastSlope() float64 { return p.slope }

// BadSignals reports how many estimator outputs the controller rejected as
// unusable (NaN, infinite, or negative).
func (p *SAGA) BadSignals() uint64 { return p.badSignals }

// sanitizeEstimate clamps an estimator output to a physically meaningful
// value: finite and non-negative. The second result reports whether the raw
// value was usable; controllers skip model updates on unusable signals so a
// dropped-out estimator cannot poison their state.
func sanitizeEstimate(est float64) (float64, bool) {
	if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
		return 0, false
	}
	return est, true
}

// ShouldCollect implements RatePolicy.
func (p *SAGA) ShouldCollect(now Clock) bool {
	if !p.armed {
		p.nextAt = p.cfg.InitialInterval
		p.armed = true
	}
	return now.Overwrites >= p.nextAt
}

// AfterCollection implements RatePolicy.
func (p *SAGA) AfterCollection(now Clock, h HeapState, res gc.CollectionResult) {
	p.est.ObserveCollection(h, res)
	est, usable := sanitizeEstimate(p.est.EstimateGarbage(h))
	if !usable {
		p.badSignals++
	}
	target := p.cfg.Frac * float64(h.DatabaseBytes())
	p.lastEstimate = est
	p.lastTarget = target

	// Slope of cumulative garbage creation, on the estimated series
	// TotGarb ≈ TotColl + ActGarb_est, in bytes per overwrite. An unusable
	// estimator signal contributes no slope sample — the previous smoothed
	// slope carries the controller through the dropout.
	tot := float64(h.TotalCollectedBytes()) + est
	t := now.Overwrites
	if usable {
		if p.havePrev && t > p.prevT {
			dt := float64(t - p.prevT)
			inst := (tot - p.prevTot) / dt
			if p.haveSlope {
				w := p.cfg.Weight
				if p.cfg.SlopeRef > 0 {
					// Time-weighted smoothing: short intervals (noisy inst)
					// contribute little, long intervals dominate.
					w = math.Pow(p.cfg.Weight, dt/float64(p.cfg.SlopeRef))
				}
				p.slope = w*p.slope + (1-w)*inst
			} else {
				p.slope = inst
				p.haveSlope = true
			}
		}
		p.prevT, p.prevTot, p.havePrev = t, tot, true
	}

	currColl := float64(res.ReclaimedBytes)
	garbDiff := est - target

	// Δt = (CurrColl − GarbDiff)/TotGarb', computed arithmetically: the
	// paper notes Δt "can become very large if TotGarb'(t) approaches
	// zero, or even negative" and relies on the [DtMin,DtMax] clamp.
	// A negative Δt (collection overdue) clamps to DtMin.
	var dt float64
	if p.haveSlope && p.slope != 0 && !math.IsNaN(p.slope) && !math.IsInf(p.slope, 0) {
		dt = (currColl - garbDiff) / p.slope
	} else {
		// No slope information yet, or perfectly flat garbage creation:
		// nothing to extrapolate; schedule far out and let the clamp bound
		// it.
		dt = float64(p.cfg.DtMax)
	}
	if math.IsNaN(dt) {
		dt = float64(p.cfg.DtMax)
	}
	interval := uint64(0)
	switch {
	case dt < float64(p.cfg.DtMin):
		interval = p.cfg.DtMin
		p.clampedMin++
	case dt > float64(p.cfg.DtMax):
		interval = p.cfg.DtMax
		p.clampedMax++
	default:
		interval = uint64(dt)
		if interval < p.cfg.DtMin {
			interval = p.cfg.DtMin
		}
	}
	p.lastInterval = interval
	p.nextAt = now.Overwrites + interval
	p.armed = true
}
