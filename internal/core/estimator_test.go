package core

import (
	"math"
	"testing"
	"testing/quick"

	"odbgc/internal/gc"
)

func TestOracleEstimatorPassthrough(t *testing.T) {
	h := &fakeHeap{actGarb: 12345}
	var e OracleEstimator
	e.ObserveCollection(h, gc.CollectionResult{ReclaimedBytes: 999})
	if got := e.EstimateGarbage(h); got != 12345 {
		t.Errorf("estimate = %v, want exact 12345", got)
	}
}

func TestCGSCBFormula(t *testing.T) {
	h := &fakeHeap{parts: 7}
	e := NewCGSCB()
	if got := e.EstimateGarbage(h); got != 0 {
		t.Errorf("estimate before any collection = %v, want 0", got)
	}
	e.ObserveCollection(h, collRes(1000, 0, 0, 5))
	if got := e.EstimateGarbage(h); got != 7000 {
		t.Errorf("estimate = %v, want C*p = 7000", got)
	}
	// Only the last collection matters (current behavior).
	e.ObserveCollection(h, collRes(200, 0, 0, 5))
	if got := e.EstimateGarbage(h); got != 1400 {
		t.Errorf("estimate = %v, want 1400", got)
	}
	// Growing the partition count scales the estimate.
	h.parts = 10
	if got := e.EstimateGarbage(h); got != 2000 {
		t.Errorf("estimate = %v, want 2000", got)
	}
}

func TestFGSHBExponentialMean(t *testing.T) {
	e, err := NewFGSHB(0.8)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeap{sumPO: 100}
	// First observation sets GPPO directly: 5000/10 = 500.
	e.ObserveCollection(h, collRes(5000, 0, 0, 10))
	if got := e.GPPO(); got != 500 {
		t.Errorf("GPPO = %v, want 500", got)
	}
	if got := e.EstimateGarbage(h); got != 50000 {
		t.Errorf("estimate = %v, want GPPO*sumPO = 50000", got)
	}
	// Second: gppo = 1000/10 = 100; smoothed = 0.8*500 + 0.2*100 = 420.
	e.ObserveCollection(h, collRes(1000, 0, 0, 10))
	if got := e.GPPO(); math.Abs(got-420) > 1e-9 {
		t.Errorf("GPPO = %v, want 420", got)
	}
}

func TestFGSHBZeroPOClamped(t *testing.T) {
	e, err := NewFGSHB(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A collection with PO = 0 must not divide by zero; it is treated as 1.
	e.ObserveCollection(&fakeHeap{}, collRes(300, 0, 0, 0))
	if got := e.GPPO(); got != 300 {
		t.Errorf("GPPO = %v, want 300", got)
	}
}

func TestFGSHBHistoryZeroIsCurrentBehavior(t *testing.T) {
	// h = 0 degenerates to FGS/CB: each observation replaces the estimate.
	e, err := NewFGSHB(0)
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveCollection(&fakeHeap{}, collRes(5000, 0, 0, 10))
	e.ObserveCollection(&fakeHeap{}, collRes(1000, 0, 0, 10))
	if got := e.GPPO(); got != 100 {
		t.Errorf("GPPO = %v, want 100 (no history)", got)
	}
}

func TestFGSHBValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		if _, err := NewFGSHB(bad); err == nil {
			t.Errorf("history %v accepted", bad)
		}
	}
}

func TestNewEstimatorByName(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"oracle", "oracle"},
		{"cgs-cb", "cgs-cb"},
		{"fgs-hb", "fgs-hb(0.90)"},
		{"", "fgs-hb(0.90)"},
	} {
		e, err := NewEstimator(tc.name, 0.9)
		if err != nil {
			t.Errorf("NewEstimator(%q): %v", tc.name, err)
			continue
		}
		if e.Name() != tc.want {
			t.Errorf("NewEstimator(%q).Name() = %q, want %q", tc.name, e.Name(), tc.want)
		}
	}
	// Zero history defaults to the paper's 0.8.
	e, err := NewEstimator("fgs-hb", 0)
	if err != nil || e.Name() != "fgs-hb(0.80)" {
		t.Errorf("default history: %v, %v", e, err)
	}
	if _, err := NewEstimator("psychic", 0); err == nil {
		t.Error("unknown estimator accepted")
	}
}

// Property: GPPO_h always lies within the range of observed GPPO samples
// (an exponential mean cannot overshoot its inputs).
func TestFGSHBBoundedProperty(t *testing.T) {
	f := func(histPct uint8, samples []uint16) bool {
		h := float64(histPct%100) / 100
		e, err := NewFGSHB(h)
		if err != nil {
			return false
		}
		if len(samples) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			reclaimed := int(s)
			e.ObserveCollection(&fakeHeap{}, collRes(reclaimed, 0, 0, 1))
			v := float64(reclaimed)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if g := e.GPPO(); g < lo-1e-9 || g > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SAGA's scheduled interval always respects the clamps.
func TestSAGAClampProperty(t *testing.T) {
	f := func(events []uint32) bool {
		h := &fakeHeap{db: 1 << 20, parts: 8}
		est, err := NewFGSHB(0.8)
		if err != nil {
			return false
		}
		p, err := NewSAGA(SAGAConfig{Frac: 0.10, DtMin: 2, DtMax: 1000}, est)
		if err != nil {
			return false
		}
		tnow := uint64(0)
		for _, ev := range events {
			tnow += uint64(ev%500) + 1
			h.actGarb = int(ev % (1 << 19))
			h.collected += uint64(ev % 1000)
			h.sumPO = int(ev % 4096)
			p.AfterCollection(Clock{Overwrites: tnow}, h, collRes(int(ev%65536), 0, 0, int(ev%64)))
			if iv := p.LastInterval(); iv < 2 || iv > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
