package core

// This file implements the two extensions the paper sketches as future work
// in §5:
//
//   - Coupled: an SAIO-style controller that consults the SAGA garbage
//     estimators to judge the cost-effectiveness of collection I/O, raising
//     its I/O spending when garbage runs above goal and lowering it when
//     collection would be a waste ("the SAIO policy could use information
//     provided by the SAGA heuristics to determine the cost-effectiveness
//     of the I/O operations being performed, and adjusting itself
//     accordingly").
//
//   - Opportunistic: a wrapper that lets any rate policy exploit quiescent
//     periods, collecting beyond the user-stated limits while the
//     application is idle ("if it appears advantageous to perform
//     collection before the interval expires (e.g., the application
//     workload drops to a quiescent state), then such opportunism can be
//     considered").

import (
	"fmt"

	"odbgc/internal/gc"
)

// CoupledConfig parameterizes the Coupled policy.
type CoupledConfig struct {
	// IOFrac is the nominal collector share of total I/O, as in SAIO.
	IOFrac float64
	// GarbFrac is the garbage goal used to judge cost-effectiveness, as in
	// SAGA.
	GarbFrac float64
	// MinFrac and MaxFrac bound the effective I/O share the controller may
	// choose. Defaults: IOFrac/4 and min(4*IOFrac, 0.9).
	MinFrac, MaxFrac float64
	// InitialInterval bootstraps like SAIO's. Defaults to 100 if zero.
	InitialInterval uint64
}

// Validate checks the configuration.
func (c CoupledConfig) Validate() error {
	if c.IOFrac <= 0 || c.IOFrac >= 1 {
		return fmt.Errorf("core: coupled IOFrac %.4f must be in (0,1)", c.IOFrac)
	}
	if c.GarbFrac <= 0 || c.GarbFrac >= 1 {
		return fmt.Errorf("core: coupled GarbFrac %.4f must be in (0,1)", c.GarbFrac)
	}
	if c.MinFrac < 0 || c.MaxFrac < 0 || c.MinFrac >= 1 || c.MaxFrac >= 1 {
		return fmt.Errorf("core: coupled frac bounds [%.4f,%.4f] must be in [0,1)", c.MinFrac, c.MaxFrac)
	}
	if c.MinFrac != 0 && c.MaxFrac != 0 && c.MinFrac > c.MaxFrac {
		return fmt.Errorf("core: coupled MinFrac %.4f > MaxFrac %.4f", c.MinFrac, c.MaxFrac)
	}
	return nil
}

func (c *CoupledConfig) applyDefaults() {
	if c.MinFrac == 0 {
		c.MinFrac = c.IOFrac / 4
	}
	if c.MaxFrac == 0 {
		c.MaxFrac = 4 * c.IOFrac
		if c.MaxFrac > 0.9 {
			c.MaxFrac = 0.9
		}
	}
	if c.InitialInterval == 0 {
		c.InitialInterval = 100
	}
}

// Coupled is the §5 coupling of SAIO and SAGA: it schedules like SAIO, but
// after each collection it scales its effective I/O share by garbage
// pressure — the ratio of estimated garbage to the garbage goal — so that
// I/O is spent where it is cost-effective:
//
//	effFrac = clamp(IOFrac · ActGarb_est/TargetGarb, MinFrac, MaxFrac)
//	ΔAppIO  = CurrGCIO · (1 − effFrac)/effFrac
//
// With garbage at goal it behaves exactly like SAIO(IOFrac); with garbage
// piling up it spends more aggressively; with little garbage it backs off
// rather than burn I/O on empty collections.
type Coupled struct {
	cfg CoupledConfig
	est Estimator

	nextAt      uint64
	armed       bool
	lastEffFrac float64
}

// NewCoupled returns a Coupled policy using the given garbage estimator.
func NewCoupled(cfg CoupledConfig, est Estimator) (*Coupled, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, fmt.Errorf("core: coupled policy requires an estimator")
	}
	cfg.applyDefaults()
	return &Coupled{cfg: cfg, est: est, lastEffFrac: cfg.IOFrac}, nil
}

// Name implements RatePolicy.
func (p *Coupled) Name() string {
	return fmt.Sprintf("coupled(io=%.0f%%,garb=%.0f%%,%s)",
		p.cfg.IOFrac*100, p.cfg.GarbFrac*100, p.est.Name())
}

// Config returns the configuration with defaults applied.
func (p *Coupled) Config() CoupledConfig { return p.cfg }

// LastEffectiveFrac returns the I/O share used for the last interval.
func (p *Coupled) LastEffectiveFrac() float64 { return p.lastEffFrac }

// ShouldCollect implements RatePolicy.
func (p *Coupled) ShouldCollect(now Clock) bool {
	if !p.armed {
		p.nextAt = p.cfg.InitialInterval
		p.armed = true
	}
	return now.AppIO >= p.nextAt
}

// AfterCollection implements RatePolicy.
func (p *Coupled) AfterCollection(now Clock, h HeapState, res gc.CollectionResult) {
	p.armed = true
	p.est.ObserveCollection(h, res)
	est, usable := sanitizeEstimate(p.est.EstimateGarbage(h))
	target := p.cfg.GarbFrac * float64(h.DatabaseBytes())

	// An unusable signal keeps the nominal share rather than ingesting NaN.
	eff := p.cfg.IOFrac
	if usable && target > 0 {
		eff = p.cfg.IOFrac * (est / target)
	}
	if eff < p.cfg.MinFrac {
		eff = p.cfg.MinFrac
	}
	if eff > p.cfg.MaxFrac {
		eff = p.cfg.MaxFrac
	}
	p.lastEffFrac = eff

	interval := float64(res.IO.GCIO()) * (1 - eff) / eff
	if interval < 1 {
		interval = 1
	}
	p.nextAt = now.AppIO + uint64(interval)
}

// IdleCollector is implemented by policies that can exploit quiescence: the
// simulator consults ShouldCollectIdle once per idle tick and collects
// while it returns true.
type IdleCollector interface {
	ShouldCollectIdle(now Clock, h HeapState) bool
}

// Opportunistic wraps any rate policy with §5's quiescence opportunism:
// during active workload it defers entirely to Inner, and during idle ticks
// it keeps collecting while the estimated garbage fraction of the database
// exceeds Floor.
type Opportunistic struct {
	inner RatePolicy
	est   Estimator
	floor float64
}

// NewOpportunistic wraps inner. floor is the garbage fraction below which
// idle collection stops (e.g. 0.02 to scrub down to 2%).
func NewOpportunistic(inner RatePolicy, est Estimator, floor float64) (*Opportunistic, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: opportunistic wrapper requires an inner policy")
	}
	if est == nil {
		return nil, fmt.Errorf("core: opportunistic wrapper requires an estimator")
	}
	if floor < 0 || floor >= 1 {
		return nil, fmt.Errorf("core: opportunistic floor %.4f must be in [0,1)", floor)
	}
	return &Opportunistic{inner: inner, est: est, floor: floor}, nil
}

// Name implements RatePolicy.
func (p *Opportunistic) Name() string {
	return fmt.Sprintf("opportunistic(%s,floor=%.0f%%)", p.inner.Name(), p.floor*100)
}

// Inner returns the wrapped policy.
func (p *Opportunistic) Inner() RatePolicy { return p.inner }

// ShouldCollect implements RatePolicy by deferring to the inner policy.
func (p *Opportunistic) ShouldCollect(now Clock) bool { return p.inner.ShouldCollect(now) }

// AfterCollection implements RatePolicy: the inner policy sees every
// collection, including opportunistic ones, so its own schedule stays
// consistent with the work already done.
func (p *Opportunistic) AfterCollection(now Clock, h HeapState, res gc.CollectionResult) {
	p.est.ObserveCollection(h, res)
	p.inner.AfterCollection(now, h, res)
}

// ShouldCollectIdle implements IdleCollector: keep collecting while the
// estimated garbage share exceeds the floor.
func (p *Opportunistic) ShouldCollectIdle(now Clock, h HeapState) bool {
	db := h.DatabaseBytes()
	if db <= 0 {
		return false
	}
	est, usable := sanitizeEstimate(p.est.EstimateGarbage(h))
	if !usable {
		return false
	}
	return est/float64(db) > p.floor
}
