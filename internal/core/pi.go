package core

import (
	"fmt"
	"math"

	"odbgc/internal/gc"
)

// PIConfig parameterizes the PI garbage controller.
type PIConfig struct {
	// Frac is the garbage target as a fraction of database size, as in
	// SAGA.
	Frac float64
	// Kp and Ki are the proportional and integral gains applied to the
	// normalized garbage error (estimated/target − 1). Defaults: 2.0 and
	// 0.3.
	Kp, Ki float64
	// IntegralClamp bounds the integral accumulator (anti-windup).
	// Default: 5.
	IntegralClamp float64
	// BaseInterval is the interval (in overwrites) the controller emits at
	// zero error. Default: 200.
	BaseInterval float64
	// DtMin and DtMax clamp the interval as in SAGA. Defaults: 2 and 1000.
	DtMin, DtMax uint64
	// InitialInterval bootstraps the first collection. Default: 100.
	InitialInterval uint64
}

// Validate checks the configuration.
func (c PIConfig) Validate() error {
	if c.Frac <= 0 || c.Frac >= 1 {
		return fmt.Errorf("core: PI Frac %.4f must be in (0,1)", c.Frac)
	}
	if c.Kp < 0 || c.Ki < 0 {
		return fmt.Errorf("core: PI gains must be >= 0")
	}
	if c.DtMin != 0 && c.DtMax != 0 && c.DtMin > c.DtMax {
		return fmt.Errorf("core: PI dtMin %d > dtMax %d", c.DtMin, c.DtMax)
	}
	return nil
}

func (c *PIConfig) applyDefaults() {
	if c.Kp == 0 {
		c.Kp = 2.0
	}
	if c.Ki == 0 {
		c.Ki = 0.3
	}
	if c.IntegralClamp == 0 {
		c.IntegralClamp = 5
	}
	if c.BaseInterval == 0 {
		c.BaseInterval = 200
	}
	if c.DtMin == 0 {
		c.DtMin = 2
	}
	if c.DtMax == 0 {
		c.DtMax = 1000
	}
	if c.InitialInterval == 0 {
		c.InitialInterval = 100
	}
}

// PIController is a textbook discrete PI controller over the garbage
// fraction, provided as a control-theory baseline for SAGA (the paper
// notes its policies come from control theory; this is the standard
// alternative formulation). The normalized error
//
//	e = ActGarb_est/TargetGarb − 1
//
// shrinks the inter-collection interval multiplicatively:
//
//	Δt = BaseInterval · exp(−(Kp·e + Ki·Σe))
//
// so garbage above target collects faster and garbage below target
// collects slower, with the same [DtMin, DtMax] clamp as SAGA. Unlike
// SAGA, it carries no model of garbage creation rate (no TotGarb′ slope),
// trading the paper's feed-forward term for simplicity.
type PIController struct {
	cfg PIConfig
	est Estimator

	integral float64
	nextAt   uint64
	armed    bool

	lastEstimate float64
	lastTarget   float64
	lastInterval uint64
}

// NewPIController returns a PI garbage controller using the estimator.
func NewPIController(cfg PIConfig, est Estimator) (*PIController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, fmt.Errorf("core: PI controller requires an estimator")
	}
	cfg.applyDefaults()
	return &PIController{cfg: cfg, est: est}, nil
}

// Name implements RatePolicy.
func (p *PIController) Name() string {
	return fmt.Sprintf("pi(%.0f%%,%s)", p.cfg.Frac*100, p.est.Name())
}

// Config returns the configuration with defaults applied.
func (p *PIController) Config() PIConfig { return p.cfg }

// LastEstimate returns the estimator output at the last collection.
func (p *PIController) LastEstimate() float64 { return p.lastEstimate }

// LastTarget returns the target garbage bytes at the last collection.
func (p *PIController) LastTarget() float64 { return p.lastTarget }

// LastInterval returns the last scheduled interval in overwrites.
func (p *PIController) LastInterval() uint64 { return p.lastInterval }

// ShouldCollect implements RatePolicy.
func (p *PIController) ShouldCollect(now Clock) bool {
	if !p.armed {
		p.nextAt = p.cfg.InitialInterval
		p.armed = true
	}
	return now.Overwrites >= p.nextAt
}

// AfterCollection implements RatePolicy.
func (p *PIController) AfterCollection(now Clock, h HeapState, res gc.CollectionResult) {
	p.armed = true
	p.est.ObserveCollection(h, res)
	est, usable := sanitizeEstimate(p.est.EstimateGarbage(h))
	target := p.cfg.Frac * float64(h.DatabaseBytes())
	p.lastEstimate = est
	p.lastTarget = target

	// An unusable estimator signal contributes zero error: the controller
	// coasts on its integral term instead of ingesting NaN.
	var e float64
	if usable && target > 0 {
		e = est/target - 1
	}
	p.integral += e
	if p.integral > p.cfg.IntegralClamp {
		p.integral = p.cfg.IntegralClamp
	}
	if p.integral < -p.cfg.IntegralClamp {
		p.integral = -p.cfg.IntegralClamp
	}

	dt := p.cfg.BaseInterval * math.Exp(-(p.cfg.Kp*e + p.cfg.Ki*p.integral))
	interval := uint64(dt)
	if dt < float64(p.cfg.DtMin) || interval < p.cfg.DtMin {
		interval = p.cfg.DtMin
	}
	if dt > float64(p.cfg.DtMax) {
		interval = p.cfg.DtMax
	}
	p.lastInterval = interval
	p.nextAt = now.Overwrites + interval
}
