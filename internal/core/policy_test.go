package core

import (
	"math"
	"strings"
	"testing"

	"odbgc/internal/gc"
	"odbgc/internal/storage"
)

// fakeHeap scripts the controller's inputs.
type fakeHeap struct {
	db        int
	actGarb   int
	collected uint64
	sumPO     int
	parts     int
}

func (f *fakeHeap) DatabaseBytes() int          { return f.db }
func (f *fakeHeap) ActualGarbageBytes() int     { return f.actGarb }
func (f *fakeHeap) TotalCollectedBytes() uint64 { return f.collected }
func (f *fakeHeap) SumPartitionOverwrites() int { return f.sumPO }
func (f *fakeHeap) NumPartitions() int          { return f.parts }

// collRes builds a CollectionResult with the given reclaim and GC I/O.
func collRes(reclaimed int, gcReads, gcWrites uint64, po int) gc.CollectionResult {
	return gc.CollectionResult{
		ReclaimedBytes: reclaimed,
		PartitionPO:    po,
		IO:             storage.IOStats{GCReads: gcReads, GCWrites: gcWrites},
	}
}

func TestNeverCollect(t *testing.T) {
	var p NeverCollect
	if p.ShouldCollect(Clock{AppIO: 1 << 40, Overwrites: 1 << 40}) {
		t.Error("NeverCollect collected")
	}
	if p.Name() != "never" {
		t.Errorf("name = %q", p.Name())
	}
	p.AfterCollection(Clock{}, nil, gc.CollectionResult{}) // must not panic
}

func TestFixedRateSchedule(t *testing.T) {
	p, err := NewFixedRate(50)
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldCollect(Clock{Overwrites: 49}) {
		t.Error("collected before first interval")
	}
	if !p.ShouldCollect(Clock{Overwrites: 50}) {
		t.Error("did not collect at interval")
	}
	p.AfterCollection(Clock{Overwrites: 53}, nil, gc.CollectionResult{})
	if p.ShouldCollect(Clock{Overwrites: 102}) {
		t.Error("rescheduled interval not relative to collection time")
	}
	if !p.ShouldCollect(Clock{Overwrites: 103}) {
		t.Error("second interval not honored")
	}
}

func TestFixedRateValidation(t *testing.T) {
	for _, bad := range []int{0, -5} {
		if _, err := NewFixedRate(bad); err == nil {
			t.Errorf("interval %d accepted", bad)
		}
	}
}

func TestSAIOValidation(t *testing.T) {
	for _, bad := range []SAIOConfig{{Frac: 0}, {Frac: 1}, {Frac: -0.1}, {Frac: 1.2}, {Frac: 0.5, Hist: -1}} {
		if _, err := NewSAIO(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestSAIOIntervalNoHistory checks the paper's c_hist = 0 formula:
// ΔAppIO = CurrGCIO · (1 − f)/f.
func TestSAIOIntervalNoHistory(t *testing.T) {
	p, err := NewSAIO(SAIOConfig{Frac: 0.10, InitialInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldCollect(Clock{AppIO: 99}) {
		t.Error("collected before bootstrap interval")
	}
	if !p.ShouldCollect(Clock{AppIO: 100}) {
		t.Error("bootstrap interval ignored")
	}
	// Collection cost 40 I/Os at 10%: next interval = 40 * 9 = 360.
	p.AfterCollection(Clock{AppIO: 100}, nil, collRes(0, 25, 15, 0))
	if p.ShouldCollect(Clock{AppIO: 459}) {
		t.Error("collected before computed interval (460)")
	}
	if !p.ShouldCollect(Clock{AppIO: 460}) {
		t.Error("computed interval not honored at 460")
	}
	// A huge requested share clamps the interval to at least 1.
	q, err := NewSAIO(SAIOConfig{Frac: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	q.AfterCollection(Clock{AppIO: 100}, nil, collRes(0, 1, 0, 0))
	if !q.ShouldCollect(Clock{AppIO: 101}) {
		t.Error("minimum interval of 1 not applied")
	}
}

// TestSAIOIntervalWithHistory checks the windowed formula:
// ΔAppIO = (GCIO_hist + CurrGCIO)(1−f)/f − AppIO_hist.
func TestSAIOIntervalWithHistory(t *testing.T) {
	p, err := NewSAIO(SAIOConfig{Frac: 0.50, Hist: 2, InitialInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	// First collection at AppIO 10 costing 30: window {app 10, gc 30}.
	// ΔAppIO = (30 + 30)·1 − 10 = 50 → next at 60.
	p.AfterCollection(Clock{AppIO: 10}, nil, collRes(0, 30, 0, 0))
	if p.ShouldCollect(Clock{AppIO: 59}) || !p.ShouldCollect(Clock{AppIO: 60}) {
		t.Error("windowed interval #1 wrong")
	}
	// Second collection at AppIO 60 costing 10: window {app 10+50, gc
	// 30+10}. ΔAppIO = (40 + 10)·1 − 60 < 1 → clamp to 1 → next at 61.
	p.AfterCollection(Clock{AppIO: 60}, nil, collRes(0, 10, 0, 0))
	if !p.ShouldCollect(Clock{AppIO: 61}) {
		t.Error("windowed interval #2 wrong")
	}
	// Third collection: the first window entry (app 10, gc 30) must have
	// rolled out of the 2-entry window. Window now {app 50+1, gc 10+20}.
	// ΔAppIO = (30 + 20)·1 − 51 < 1 → 1.
	p.AfterCollection(Clock{AppIO: 61}, nil, collRes(0, 20, 0, 0))
	if !p.ShouldCollect(Clock{AppIO: 62}) {
		t.Error("windowed interval #3 wrong")
	}
}

func TestSAGAValidation(t *testing.T) {
	est := OracleEstimator{}
	bad := []SAGAConfig{
		{Frac: 0}, {Frac: 1}, {Frac: -0.2},
		{Frac: 0.1, Weight: 1.0},
		{Frac: 0.1, Weight: -0.5},
		{Frac: 0.1, DtMin: 100, DtMax: 10},
	}
	for _, cfg := range bad {
		if _, err := NewSAGA(cfg, est); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewSAGA(SAGAConfig{Frac: 0.1}, nil); err == nil {
		t.Error("nil estimator accepted")
	}
	p, err := NewSAGA(SAGAConfig{Frac: 0.1}, est)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Weight != 0.7 || cfg.DtMin != 2 || cfg.DtMax != 1000 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

// TestSAGAIntervalFormula scripts two collections and checks
// Δt = (CurrColl − GarbDiff)/TotGarb'.
func TestSAGAIntervalFormula(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4}
	p, err := NewSAGA(SAGAConfig{Frac: 0.10, Weight: 0.7, DtMin: 2, DtMax: 1000, InitialInterval: 50}, OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.ShouldCollect(Clock{Overwrites: 50}) {
		t.Error("bootstrap not honored")
	}

	// Collection 1 at t=100: est = actGarb = 12000, collected = 5000.
	// No slope yet (first sample) → Δt = DtMax.
	h.actGarb = 12000
	h.collected = 5000
	p.AfterCollection(Clock{Overwrites: 100}, h, collRes(5000, 0, 0, 10))
	if p.LastInterval() != 1000 {
		t.Errorf("first interval = %d, want DtMax 1000", p.LastInterval())
	}
	if p.LastEstimate() != 12000 || p.LastTarget() != 10000 {
		t.Errorf("diagnostics: est=%v target=%v", p.LastEstimate(), p.LastTarget())
	}

	// Collection 2 at t=200: actGarb 13000, collected 11000 (this
	// collection reclaimed 6000). TotGarb went (5000+12000)=17000 →
	// (11000+13000)=24000 over Δt=100 → inst slope 70 B/ow (first sample
	// sets the smoothed slope directly).
	// Δt = (CurrColl − GarbDiff)/slope = (6000 − 3000)/70 ≈ 42.
	h.actGarb = 13000
	h.collected = 11000
	p.AfterCollection(Clock{Overwrites: 200}, h, collRes(6000, 0, 0, 10))
	if p.LastInterval() != 42 {
		t.Errorf("second interval = %d, want 42", p.LastInterval())
	}
	if got := p.LastSlope(); math.Abs(got-70) > 1e-9 {
		t.Errorf("slope = %v, want 70", got)
	}
	if p.ShouldCollect(Clock{Overwrites: 241}) || !p.ShouldCollect(Clock{Overwrites: 242}) {
		t.Error("interval not applied to schedule")
	}
}

func TestSAGAClamps(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4}
	p, err := NewSAGA(SAGAConfig{Frac: 0.10}, OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	// Prime a positive slope.
	h.actGarb = 5000
	p.AfterCollection(Clock{Overwrites: 100}, h, collRes(1000, 0, 0, 1))
	h.actGarb = 50000
	h.collected = 2000
	p.AfterCollection(Clock{Overwrites: 200}, h, collRes(1000, 0, 0, 1))
	// Way over target with tiny reclaim: Δt would be negative → DtMin.
	h.actGarb = 90000
	h.collected = 2100
	p.AfterCollection(Clock{Overwrites: 300}, h, collRes(100, 0, 0, 1))
	if p.LastInterval() != 2 {
		t.Errorf("overdue interval = %d, want DtMin 2", p.LastInterval())
	}
	minC, maxC := p.ClampCounts()
	if minC == 0 {
		t.Errorf("clamp counts = %d/%d, want DtMin hits recorded", minC, maxC)
	}
}

func TestSAGANegativeEstimateTreatedAsZero(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4, sumPO: -1} // forces negative FGS estimate
	fgs, err := NewFGSHB(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSAGA(SAGAConfig{Frac: 0.10}, fgs)
	if err != nil {
		t.Fatal(err)
	}
	p.AfterCollection(Clock{Overwrites: 10}, h, collRes(500, 0, 0, 1))
	if p.LastEstimate() != 0 {
		t.Errorf("estimate = %v, want clamped to 0", p.LastEstimate())
	}
}

func TestPolicyNames(t *testing.T) {
	fr, _ := NewFixedRate(100)
	saio, _ := NewSAIO(SAIOConfig{Frac: 0.25})
	fgs, _ := NewFGSHB(0.8)
	saga, _ := NewSAGA(SAGAConfig{Frac: 0.05}, fgs)
	for _, tc := range []struct{ got, want string }{
		{fr.Name(), "fixed(100)"},
		{saio.Name(), "saio(25%)"},
		{saga.Name(), "saga(5%,fgs-hb(0.80))"},
	} {
		if tc.got != tc.want {
			t.Errorf("name = %q, want %q", tc.got, tc.want)
		}
	}
	if saga.Estimator() != fgs {
		t.Error("Estimator() lost the configured estimator")
	}
}

func TestSAGAErrorMessages(t *testing.T) {
	_, err := NewSAGA(SAGAConfig{Frac: 2}, OracleEstimator{})
	if err == nil || !strings.Contains(err.Error(), "SAGA_Frac") {
		t.Errorf("error = %v", err)
	}
}

// TestSAIODriftWithAlternatingCosts reproduces the paper's §4.1.1 analysis:
// when successive collections alternate between expensive and cheap (100,
// 50, 100, ... I/Os), the ΔGCIO = CurrGCIO assumption mispredicts in both
// directions but the errors do not cancel — the achieved share drifts off
// the request — and history (c_hist > 0) exposes the misprediction to the
// controller and reduces the drift.
func TestSAIODriftWithAlternatingCosts(t *testing.T) {
	achieved := func(hist int) float64 {
		p, err := NewSAIO(SAIOConfig{Frac: 0.30, Hist: hist, InitialInterval: 100})
		if err != nil {
			t.Fatal(err)
		}
		costs := []uint64{100, 50}
		var appIO, gcIO uint64
		// Closed loop: run the app until the policy fires, pay the
		// alternating collection cost, let it reschedule.
		for i := 0; i < 400; i++ {
			for !p.ShouldCollect(Clock{AppIO: appIO, GCIO: gcIO}) {
				appIO++
			}
			cost := costs[i%len(costs)]
			gcIO += cost
			p.AfterCollection(Clock{AppIO: appIO, GCIO: gcIO}, nil,
				collRes(0, cost, 0, 0))
		}
		return float64(gcIO) / float64(gcIO+appIO)
	}
	noHist := achieved(0)
	withHist := achieved(8)
	t.Logf("requested 30%%: achieved %.4f (c_hist=0) vs %.4f (c_hist=8)", noHist, withHist)
	if noHist <= 0.30 {
		t.Errorf("expected upward drift with c_hist=0, got %.4f", noHist)
	}
	if math.Abs(withHist-0.30) >= math.Abs(noHist-0.30) {
		t.Errorf("history did not reduce drift: %.4f vs %.4f", withHist, noHist)
	}
}

// TestSAIOExactWithConstantCosts: with perfectly constant collection costs
// the assumption holds and the achieved share converges to the request.
func TestSAIOExactWithConstantCosts(t *testing.T) {
	p, err := NewSAIO(SAIOConfig{Frac: 0.20, InitialInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	var appIO, gcIO uint64
	for i := 0; i < 300; i++ {
		for !p.ShouldCollect(Clock{AppIO: appIO, GCIO: gcIO}) {
			appIO++
		}
		gcIO += 40
		p.AfterCollection(Clock{AppIO: appIO, GCIO: gcIO}, nil, collRes(0, 40, 0, 0))
	}
	share := float64(gcIO) / float64(gcIO+appIO)
	if math.Abs(share-0.20) > 0.005 {
		t.Errorf("constant-cost share = %.4f, want 0.20", share)
	}
}
