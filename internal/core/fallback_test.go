package core

import (
	"math"
	"testing"

	"odbgc/internal/gc"
)

// scriptedEstimator returns a scripted sequence of estimates, repeating the
// last one when exhausted.
type scriptedEstimator struct {
	vals []float64
	i    int
	obs  int
}

func (e *scriptedEstimator) Name() string { return "scripted" }
func (e *scriptedEstimator) ObserveCollection(HeapState, gc.CollectionResult) {
	e.obs++
}
func (e *scriptedEstimator) EstimateGarbage(HeapState) float64 {
	v := e.vals[e.i]
	if e.i < len(e.vals)-1 {
		e.i++
	}
	return v
}

func TestFallbackTripAndRecover(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4}
	primary := &scriptedEstimator{vals: []float64{
		5000,                    // good
		math.NaN(), math.Inf(1), // bad x2 -> trips at 2nd
		4000, 4100, 4200, // good x3 -> recovers at 3rd
		4300,
	}}
	fallback := &scriptedEstimator{vals: []float64{7000}}
	fe, err := NewFallbackEstimator(primary, fallback, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	res := collRes(1000, 10, 10, 5)
	step := func() float64 {
		fe.ObserveCollection(h, res)
		return fe.EstimateGarbage(h)
	}

	if got := step(); got != 5000 || fe.Tripped() {
		t.Fatalf("healthy primary: got %v tripped=%v", got, fe.Tripped())
	}
	step() // 1st bad sample: below TripAfter, passes through untripped
	if fe.Tripped() {
		t.Fatal("single bad sample tripped early")
	}
	if got := step(); got != 7000 || !fe.Tripped() {
		t.Fatalf("after 2 bad samples: got %v tripped=%v, want fallback 7000", got, fe.Tripped())
	}
	if fe.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", fe.Trips())
	}
	// Two good readings: still serving fallback.
	if got := step(); got != 7000 || !fe.Tripped() {
		t.Fatalf("1 good reading: got %v tripped=%v", got, fe.Tripped())
	}
	if got := step(); got != 7000 || !fe.Tripped() {
		t.Fatalf("2 good readings: got %v tripped=%v", got, fe.Tripped())
	}
	// Third good reading recovers and serves the primary again.
	if got := step(); got != 4200 || fe.Tripped() {
		t.Fatalf("3rd good reading: got %v tripped=%v, want primary 4200", got, fe.Tripped())
	}
	if fe.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", fe.Recoveries())
	}
	// Both wrapped estimators observed every collection.
	if primary.obs != 6 || fallback.obs != 6 {
		t.Fatalf("observations primary=%d fallback=%d, want 6 each", primary.obs, fallback.obs)
	}
}

func TestFallbackRejectsImpossibleEstimates(t *testing.T) {
	h := &fakeHeap{db: 1000, parts: 1}
	primary := &scriptedEstimator{vals: []float64{5000}} // 5x the database size
	fallback := &scriptedEstimator{vals: []float64{200}}
	fe, err := NewFallbackEstimator(primary, fallback, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fe.EstimateGarbage(h); got != 200 || !fe.Tripped() {
		t.Fatalf("impossible estimate served: got %v tripped=%v", got, fe.Tripped())
	}
}

func TestFallbackBothSignalsGone(t *testing.T) {
	h := &fakeHeap{db: 1000, parts: 1}
	fe, err := NewFallbackEstimator(
		&scriptedEstimator{vals: []float64{math.NaN()}},
		&scriptedEstimator{vals: []float64{math.Inf(1)}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fe.EstimateGarbage(h); got != 0 {
		t.Fatalf("both signals unusable: got %v, want 0", got)
	}
}

// TestSAGASurvivesNaNSignal: a NaN estimator must not poison SAGA's slope or
// produce a NaN interval.
func TestSAGASurvivesNaNSignal(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4, sumPO: 100}
	est := &scriptedEstimator{vals: []float64{
		3000, 4000, math.NaN(), math.NaN(), 5000,
	}}
	p, err := NewSAGA(SAGAConfig{Frac: 0.05}, est)
	if err != nil {
		t.Fatal(err)
	}
	res := collRes(1000, 10, 10, 5)
	var now Clock
	for i := 0; i < 5; i++ {
		now.Overwrites += 100
		p.AfterCollection(now, h, res)
		if iv := p.LastInterval(); iv < p.Config().DtMin || iv > p.Config().DtMax {
			t.Fatalf("step %d: interval %d outside clamp [%d,%d]",
				i, iv, p.Config().DtMin, p.Config().DtMax)
		}
		if math.IsNaN(p.LastSlope()) || math.IsInf(p.LastSlope(), 0) {
			t.Fatalf("step %d: slope poisoned: %v", i, p.LastSlope())
		}
		if math.IsNaN(p.LastEstimate()) {
			t.Fatalf("step %d: NaN estimate recorded", i)
		}
	}
	if p.BadSignals() != 2 {
		t.Fatalf("bad signals = %d, want 2", p.BadSignals())
	}
}

// TestPISurvivesNaNSignal: same for the PI controller's integral term.
func TestPISurvivesNaNSignal(t *testing.T) {
	h := &fakeHeap{db: 100000, parts: 4}
	est := &scriptedEstimator{vals: []float64{3000, math.NaN(), 4000}}
	p, err := NewPIController(PIConfig{Frac: 0.05}, est)
	if err != nil {
		t.Fatal(err)
	}
	res := collRes(1000, 10, 10, 5)
	var now Clock
	for i := 0; i < 3; i++ {
		now.Overwrites += 100
		p.AfterCollection(now, h, res)
		if iv := p.LastInterval(); iv < p.Config().DtMin || iv > p.Config().DtMax {
			t.Fatalf("step %d: interval %d outside clamp", i, iv)
		}
	}
}
