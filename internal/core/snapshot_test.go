package core

import (
	"reflect"
	"testing"
)

// driveController feeds n collections through a policy so it accumulates
// nontrivial internal state.
func driveController(p RatePolicy, h HeapState, n int) {
	var now Clock
	res := collRes(1000, 10, 10, 5)
	for i := 0; i < n; i++ {
		now.Overwrites += 100
		now.AppIO += 500
		p.ShouldCollect(now)
		p.AfterCollection(now, h, res)
	}
}

// snapshotRoundTrip captures src's state into a freshly built twin and
// verifies both produce identical behavior afterwards.
func snapshotRoundTrip(t *testing.T, name string, src, dst RatePolicy) {
	t.Helper()
	h := &fakeHeap{db: 100000, parts: 4, sumPO: 60, actGarb: 4000}
	driveController(src, h, 5)

	state, err := SnapshotComponent(src)
	if err != nil {
		t.Fatalf("%s: snapshot: %v", name, err)
	}
	if err := RestoreComponent(dst, state); err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	// Re-snapshot must be identical.
	again, err := SnapshotComponent(dst)
	if err != nil {
		t.Fatalf("%s: re-snapshot: %v", name, err)
	}
	if !reflect.DeepEqual(state, again) {
		t.Fatalf("%s: state changed across restore", name)
	}
	// Identical future behavior.
	var now Clock
	res := collRes(800, 8, 8, 3)
	for i := 0; i < 3; i++ {
		now.Overwrites += 50
		now.AppIO += 250
		a := src.ShouldCollect(now)
		b := dst.ShouldCollect(now)
		if a != b {
			t.Fatalf("%s: step %d: ShouldCollect diverged (%v vs %v)", name, i, a, b)
		}
		src.AfterCollection(now, h, res)
		dst.AfterCollection(now, h, res)
	}
	sa, _ := SnapshotComponent(src)
	sb, _ := SnapshotComponent(dst)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("%s: states diverged after identical inputs", name)
	}
}

func TestPolicySnapshotRoundTrips(t *testing.T) {
	mkFixed := func() RatePolicy {
		p, err := NewFixedRate(75)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkSAIO := func() RatePolicy {
		p, err := NewSAIO(SAIOConfig{Frac: 0.1, Hist: 3})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkSAGA := func() RatePolicy {
		est, err := NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSAGA(SAGAConfig{Frac: 0.05}, est)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkPI := func() RatePolicy {
		p, err := NewPIController(PIConfig{Frac: 0.05}, NewCGSCB())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkCoupled := func() RatePolicy {
		p, err := NewCoupled(CoupledConfig{IOFrac: 0.1, GarbFrac: 0.05}, NewCGSCB())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkOpp := func() RatePolicy {
		inner, err := NewFixedRate(50)
		if err != nil {
			t.Fatal(err)
		}
		est, err := NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewOpportunistic(inner, est, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkSAGAWindow := func() RatePolicy {
		est, err := NewFGSWindow(4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSAGA(SAGAConfig{Frac: 0.05}, est)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkSAGAPP := func() RatePolicy {
		est, err := NewFGSPerPartition(0.8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSAGA(SAGAConfig{Frac: 0.05}, est)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkSAGAFallback := func() RatePolicy {
		prim, err := NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := NewFallbackEstimator(prim, NewCGSCB(), 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSAGA(SAGAConfig{Frac: 0.05}, fe)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		mk   func() RatePolicy
	}{
		{"fixed", mkFixed},
		{"saio", mkSAIO},
		{"saga-fgshb", mkSAGA},
		{"pi", mkPI},
		{"coupled", mkCoupled},
		{"opportunistic", mkOpp},
		{"saga-window", mkSAGAWindow},
		{"saga-perpartition", mkSAGAPP},
		{"saga-fallback", mkSAGAFallback},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snapshotRoundTrip(t, tc.name, tc.mk(), tc.mk())
		})
	}
}

func TestStatelessComponentsSnapshot(t *testing.T) {
	// NeverCollect and OracleEstimator carry no state: SnapshotComponent
	// yields nil and RestoreComponent accepts it.
	for _, v := range []any{NeverCollect{}, OracleEstimator{}} {
		state, err := SnapshotComponent(v)
		if err != nil || state != nil {
			t.Fatalf("%T: state=%v err=%v", v, state, err)
		}
		if err := RestoreComponent(v, nil); err != nil {
			t.Fatalf("%T: restore nil: %v", v, err)
		}
		if err := RestoreComponent(v, []byte{1}); err == nil {
			t.Fatalf("%T: accepted state bytes for stateless component", v)
		}
	}
}
