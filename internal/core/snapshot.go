package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"odbgc/internal/storage"
)

// Snapshotter is implemented by policies and estimators whose scheduling
// state must survive a checkpoint/resume cycle. Stateless components
// (NeverCollect, OracleEstimator) simply do not implement it.
//
// SnapshotState returns an opaque, self-contained encoding; RestoreState
// accepts exactly what SnapshotState produced for a component constructed
// with the same configuration. Configuration itself is not part of the
// state — the resuming caller reconstructs components from configuration and
// then feeds them their state.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// SnapshotComponent captures a component's state if it has any. Components
// that do not implement Snapshotter yield nil, which RestoreComponent
// accepts back as a no-op.
func SnapshotComponent(v any) ([]byte, error) {
	if s, ok := v.(Snapshotter); ok {
		return s.SnapshotState()
	}
	return nil, nil
}

// RestoreComponent hands previously captured state back to a component.
func RestoreComponent(v any, data []byte) error {
	if s, ok := v.(Snapshotter); ok {
		return s.RestoreState(data)
	}
	if len(data) != 0 {
		return fmt.Errorf("core: %d bytes of state for a stateless component %T", len(data), v)
	}
	return nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// --- policies ---------------------------------------------------------------

type fixedRateState struct {
	NextAt uint64
	Armed  bool
}

// SnapshotState implements Snapshotter.
func (p *FixedRate) SnapshotState() ([]byte, error) {
	return gobEncode(fixedRateState{NextAt: p.nextAt, Armed: p.armed})
}

// RestoreState implements Snapshotter.
func (p *FixedRate) RestoreState(data []byte) error {
	var st fixedRateState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	p.nextAt, p.armed = st.NextAt, st.Armed
	return nil
}

type saioState struct {
	HistApp   []uint64
	HistGC    []uint64
	LastAppIO uint64
	NextAt    uint64
	Armed     bool
}

// SnapshotState implements Snapshotter.
func (p *SAIO) SnapshotState() ([]byte, error) {
	return gobEncode(saioState{
		HistApp:   append([]uint64(nil), p.histApp...),
		HistGC:    append([]uint64(nil), p.histGC...),
		LastAppIO: p.lastAppIO,
		NextAt:    p.nextAt,
		Armed:     p.armed,
	})
}

// RestoreState implements Snapshotter.
func (p *SAIO) RestoreState(data []byte) error {
	var st saioState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	p.histApp = st.HistApp
	p.histGC = st.HistGC
	p.lastAppIO = st.LastAppIO
	p.nextAt = st.NextAt
	p.armed = st.Armed
	return nil
}

type sagaState struct {
	Slope        float64
	HaveSlope    bool
	PrevT        uint64
	PrevTot      float64
	HavePrev     bool
	NextAt       uint64
	Armed        bool
	LastEstimate float64
	LastTarget   float64
	LastInterval uint64
	ClampedMin   uint64
	ClampedMax   uint64
	BadSignals   uint64
	Estimator    []byte
}

// SnapshotState implements Snapshotter; the estimator's state rides along.
func (p *SAGA) SnapshotState() ([]byte, error) {
	est, err := SnapshotComponent(p.est)
	if err != nil {
		return nil, err
	}
	return gobEncode(sagaState{
		Slope: p.slope, HaveSlope: p.haveSlope,
		PrevT: p.prevT, PrevTot: p.prevTot, HavePrev: p.havePrev,
		NextAt: p.nextAt, Armed: p.armed,
		LastEstimate: p.lastEstimate, LastTarget: p.lastTarget, LastInterval: p.lastInterval,
		ClampedMin: p.clampedMin, ClampedMax: p.clampedMax, BadSignals: p.badSignals,
		Estimator: est,
	})
}

// RestoreState implements Snapshotter.
func (p *SAGA) RestoreState(data []byte) error {
	var st sagaState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := RestoreComponent(p.est, st.Estimator); err != nil {
		return err
	}
	p.slope, p.haveSlope = st.Slope, st.HaveSlope
	p.prevT, p.prevTot, p.havePrev = st.PrevT, st.PrevTot, st.HavePrev
	p.nextAt, p.armed = st.NextAt, st.Armed
	p.lastEstimate, p.lastTarget, p.lastInterval = st.LastEstimate, st.LastTarget, st.LastInterval
	p.clampedMin, p.clampedMax, p.badSignals = st.ClampedMin, st.ClampedMax, st.BadSignals
	return nil
}

type piState struct {
	Integral     float64
	NextAt       uint64
	Armed        bool
	LastEstimate float64
	LastTarget   float64
	LastInterval uint64
	Estimator    []byte
}

// SnapshotState implements Snapshotter.
func (p *PIController) SnapshotState() ([]byte, error) {
	est, err := SnapshotComponent(p.est)
	if err != nil {
		return nil, err
	}
	return gobEncode(piState{
		Integral: p.integral, NextAt: p.nextAt, Armed: p.armed,
		LastEstimate: p.lastEstimate, LastTarget: p.lastTarget, LastInterval: p.lastInterval,
		Estimator: est,
	})
}

// RestoreState implements Snapshotter.
func (p *PIController) RestoreState(data []byte) error {
	var st piState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := RestoreComponent(p.est, st.Estimator); err != nil {
		return err
	}
	p.integral = st.Integral
	p.nextAt, p.armed = st.NextAt, st.Armed
	p.lastEstimate, p.lastTarget, p.lastInterval = st.LastEstimate, st.LastTarget, st.LastInterval
	return nil
}

type coupledState struct {
	NextAt      uint64
	Armed       bool
	LastEffFrac float64
	Estimator   []byte
}

// SnapshotState implements Snapshotter.
func (p *Coupled) SnapshotState() ([]byte, error) {
	est, err := SnapshotComponent(p.est)
	if err != nil {
		return nil, err
	}
	return gobEncode(coupledState{
		NextAt: p.nextAt, Armed: p.armed, LastEffFrac: p.lastEffFrac, Estimator: est,
	})
}

// RestoreState implements Snapshotter.
func (p *Coupled) RestoreState(data []byte) error {
	var st coupledState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := RestoreComponent(p.est, st.Estimator); err != nil {
		return err
	}
	p.nextAt, p.armed, p.lastEffFrac = st.NextAt, st.Armed, st.LastEffFrac
	return nil
}

type opportunisticState struct {
	Inner     []byte
	Estimator []byte
}

// SnapshotState implements Snapshotter: the wrapped policy and estimator
// carry the actual state.
func (p *Opportunistic) SnapshotState() ([]byte, error) {
	inner, err := SnapshotComponent(p.inner)
	if err != nil {
		return nil, err
	}
	est, err := SnapshotComponent(p.est)
	if err != nil {
		return nil, err
	}
	return gobEncode(opportunisticState{Inner: inner, Estimator: est})
}

// RestoreState implements Snapshotter.
func (p *Opportunistic) RestoreState(data []byte) error {
	var st opportunisticState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := RestoreComponent(p.inner, st.Inner); err != nil {
		return err
	}
	return RestoreComponent(p.est, st.Estimator)
}

// --- estimators -------------------------------------------------------------

type cgscbState struct {
	LastReclaimed float64
}

// SnapshotState implements Snapshotter.
func (e *CGSCB) SnapshotState() ([]byte, error) {
	return gobEncode(cgscbState{LastReclaimed: e.lastReclaimed})
}

// RestoreState implements Snapshotter.
func (e *CGSCB) RestoreState(data []byte) error {
	var st cgscbState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	e.lastReclaimed = st.LastReclaimed
	return nil
}

type fgshbState struct {
	GppoH   float64
	HaveObs bool
}

// SnapshotState implements Snapshotter.
func (e *FGSHB) SnapshotState() ([]byte, error) {
	return gobEncode(fgshbState{GppoH: e.gppoH, HaveObs: e.haveObs})
}

// RestoreState implements Snapshotter.
func (e *FGSHB) RestoreState(data []byte) error {
	var st fgshbState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	e.gppoH, e.haveObs = st.GppoH, st.HaveObs
	return nil
}

type fgsWindowState struct {
	Samples []float64
}

// SnapshotState implements Snapshotter.
func (e *FGSWindow) SnapshotState() ([]byte, error) {
	return gobEncode(fgsWindowState{Samples: append([]float64(nil), e.samples...)})
}

// RestoreState implements Snapshotter.
func (e *FGSWindow) RestoreState(data []byte) error {
	var st fgsWindowState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	e.samples = st.Samples
	return nil
}

type partitionGPPO struct {
	Part storage.PartitionID
	GPPO float64
}

type fgsPerPartitionState struct {
	PerPart []partitionGPPO // sorted by partition
	Global  fgshbState
}

// SnapshotState implements Snapshotter.
func (e *FGSPerPartition) SnapshotState() ([]byte, error) {
	st := fgsPerPartitionState{Global: fgshbState{GppoH: e.global.gppoH, HaveObs: e.global.haveObs}}
	for p, g := range e.perPart {
		st.PerPart = append(st.PerPart, partitionGPPO{Part: p, GPPO: g})
	}
	sort.Slice(st.PerPart, func(i, j int) bool { return st.PerPart[i].Part < st.PerPart[j].Part })
	return gobEncode(st)
}

// RestoreState implements Snapshotter.
func (e *FGSPerPartition) RestoreState(data []byte) error {
	var st fgsPerPartitionState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	e.perPart = make(map[storage.PartitionID]float64, len(st.PerPart))
	for _, pg := range st.PerPart {
		e.perPart[pg.Part] = pg.GPPO
	}
	e.global.gppoH, e.global.haveObs = st.Global.GppoH, st.Global.HaveObs
	return nil
}

type fallbackState struct {
	Primary    []byte
	Fallback   []byte
	Bad        int
	Good       int
	Tripped    bool
	Trips      uint64
	Recoveries uint64
}

// SnapshotState implements Snapshotter.
func (e *FallbackEstimator) SnapshotState() ([]byte, error) {
	primary, err := SnapshotComponent(e.primary)
	if err != nil {
		return nil, err
	}
	fallback, err := SnapshotComponent(e.fallback)
	if err != nil {
		return nil, err
	}
	return gobEncode(fallbackState{
		Primary: primary, Fallback: fallback,
		Bad: e.bad, Good: e.good, Tripped: e.tripped,
		Trips: e.trips, Recoveries: e.recoveries,
	})
}

// RestoreState implements Snapshotter.
func (e *FallbackEstimator) RestoreState(data []byte) error {
	var st fallbackState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := RestoreComponent(e.primary, st.Primary); err != nil {
		return err
	}
	if err := RestoreComponent(e.fallback, st.Fallback); err != nil {
		return err
	}
	e.bad, e.good, e.tripped = st.Bad, st.Good, st.Tripped
	e.trips, e.recoveries = st.Trips, st.Recoveries
	return nil
}
