package core

import (
	"fmt"

	"odbgc/internal/gc"
)

// Estimator estimates the amount of garbage currently in the database, the
// quantity the SAGA policy regulates. Determining it exactly would require
// scanning the whole database, so practical estimators combine cheap state
// (partition counts, per-partition overwrite counters) with collector
// behavior (bytes reclaimed per collection), per §2.4 of the paper.
type Estimator interface {
	Name() string
	// ObserveCollection is called after every collection with its result,
	// letting the estimator update its behavior metrics.
	ObserveCollection(h HeapState, res gc.CollectionResult)
	// EstimateGarbage returns the estimated garbage bytes in the database.
	EstimateGarbage(h HeapState) float64
}

// OracleEstimator knows exactly how much garbage exists — the
// impractical-to-implement baseline the paper uses to validate the SAGA
// control algorithm independent of estimator quality.
type OracleEstimator struct{}

// Name implements Estimator.
func (OracleEstimator) Name() string { return "oracle" }

// ObserveCollection implements Estimator.
func (OracleEstimator) ObserveCollection(HeapState, gc.CollectionResult) {}

// EstimateGarbage implements Estimator.
func (OracleEstimator) EstimateGarbage(h HeapState) float64 {
	return float64(h.ActualGarbageBytes())
}

// CGSCB is the coarse-grain-state / current-behavior heuristic (§2.4.1):
//
//	ActGarb = C · p
//
// with C the bytes reclaimed by the last collection and p the number of
// allocated partitions. It assumes the last collected partition is
// representative of all partitions — an assumption UPDATEDPOINTER selection
// deliberately violates by finding partitions with above-average garbage,
// which is why this estimator overestimates (Figure 6a).
type CGSCB struct {
	lastReclaimed float64
}

// NewCGSCB returns a fresh CGS/CB estimator.
func NewCGSCB() *CGSCB { return &CGSCB{} }

// Name implements Estimator.
func (*CGSCB) Name() string { return "cgs-cb" }

// ObserveCollection implements Estimator.
func (e *CGSCB) ObserveCollection(_ HeapState, res gc.CollectionResult) {
	e.lastReclaimed = float64(res.ReclaimedBytes)
}

// EstimateGarbage implements Estimator.
func (e *CGSCB) EstimateGarbage(h HeapState) float64 {
	return e.lastReclaimed * float64(h.NumPartitions())
}

// FGSHB is the fine-grain-state / history-behavior heuristic (§2.4.2). The
// behavior metric is garbage reclaimed per pointer overwrite (GPPO),
// smoothed by an exponential mean with history factor h:
//
//	GPPO_h = h·GPPO_h + (1−h)·GPPO
//
// and combined with the fine-grain state — per-partition overwrite
// counters — to predict
//
//	ActGarb = GPPO_h · Σ_p PO(p).
//
// Setting History to 0 degenerates to FGS/CB (current behavior only).
type FGSHB struct {
	// History is the paper's h factor in [0,1). The paper studies 0.50,
	// 0.80 and 0.95 (Figure 7a) and uses 0.80 in practice.
	History float64

	gppoH   float64
	haveObs bool
}

// NewFGSHB returns an FGS/HB estimator with the given history factor.
func NewFGSHB(history float64) (*FGSHB, error) {
	if history < 0 || history >= 1 {
		return nil, fmt.Errorf("core: FGS/HB history %.4f must be in [0,1)", history)
	}
	return &FGSHB{History: history}, nil
}

// Name implements Estimator.
func (e *FGSHB) Name() string { return fmt.Sprintf("fgs-hb(%.2f)", e.History) }

// GPPO returns the current smoothed garbage-per-pointer-overwrite estimate.
func (e *FGSHB) GPPO() float64 { return e.gppoH }

// ObserveCollection implements Estimator.
func (e *FGSHB) ObserveCollection(_ HeapState, res gc.CollectionResult) {
	po := res.PartitionPO
	if po < 1 {
		po = 1 // a collection with no recorded overwrites still yields a sample
	}
	gppo := float64(res.ReclaimedBytes) / float64(po)
	if e.haveObs {
		e.gppoH = e.History*e.gppoH + (1-e.History)*gppo
	} else {
		e.gppoH = gppo
		e.haveObs = true
	}
}

// EstimateGarbage implements Estimator.
func (e *FGSHB) EstimateGarbage(h HeapState) float64 {
	return e.gppoH * float64(h.SumPartitionOverwrites())
}

// NewEstimator constructs an estimator by name: "oracle", "cgs-cb",
// "fgs-hb", "fgs-window", "fgs-pp", or "fallback" (FGS/HB degrading to
// CGS/CB on signal dropout). The history parameter is the exponential-mean
// factor for fgs-hb/fgs-pp/fallback (0 means the paper's 0.8) and the window
// length for fgs-window (0 means 8).
func NewEstimator(name string, history float64) (Estimator, error) {
	switch name {
	case "oracle":
		return OracleEstimator{}, nil
	case "fallback":
		if history == 0 {
			history = 0.8
		}
		primary, err := NewFGSHB(history)
		if err != nil {
			return nil, err
		}
		return NewFallbackEstimator(primary, NewCGSCB(), 0, 0)
	case "cgs-cb":
		return NewCGSCB(), nil
	case "fgs-hb", "":
		if history == 0 {
			history = 0.8
		}
		return NewFGSHB(history)
	case "fgs-window":
		n := int(history)
		if n == 0 {
			n = 8
		}
		return NewFGSWindow(n)
	case "fgs-pp":
		if history == 0 {
			history = 0.8
		}
		return NewFGSPerPartition(history)
	default:
		return nil, fmt.Errorf("core: unknown estimator %q", name)
	}
}
