package core

import (
	"strings"
	"testing"
)

func TestCoupledValidation(t *testing.T) {
	est := OracleEstimator{}
	bad := []CoupledConfig{
		{IOFrac: 0, GarbFrac: 0.1},
		{IOFrac: 0.1, GarbFrac: 0},
		{IOFrac: 0.1, GarbFrac: 0.1, MinFrac: 0.5, MaxFrac: 0.2},
		{IOFrac: 0.1, GarbFrac: 0.1, MaxFrac: 1.5},
	}
	for _, cfg := range bad {
		if _, err := NewCoupled(cfg, est); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewCoupled(CoupledConfig{IOFrac: 0.1, GarbFrac: 0.1}, nil); err == nil {
		t.Error("nil estimator accepted")
	}
	p, err := NewCoupled(CoupledConfig{IOFrac: 0.1, GarbFrac: 0.1}, est)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.MinFrac != 0.025 || cfg.MaxFrac != 0.4 {
		t.Errorf("defaults: %+v", cfg)
	}
	if !strings.Contains(p.Name(), "coupled") {
		t.Errorf("name = %q", p.Name())
	}
}

// TestCoupledScalesWithGarbagePressure: at goal the effective share equals
// the nominal; above goal it rises; below goal it falls, within bounds.
func TestCoupledScalesWithGarbagePressure(t *testing.T) {
	est := OracleEstimator{}
	mkPolicy := func() *Coupled {
		p, err := NewCoupled(CoupledConfig{IOFrac: 0.10, GarbFrac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		garb    int
		wantEff float64
		// expected interval = 20 GCIO * (1-eff)/eff
	}{
		{10000, 0.10},  // exactly at goal: 10% of 100000
		{20000, 0.20},  // double the goal: spend double
		{5000, 0.05},   // half the goal: spend half
		{100000, 0.40}, // clamped at MaxFrac (4x nominal)
		{0, 0.025},     // clamped at MinFrac (nominal/4)
	}
	for _, tc := range cases {
		p := mkPolicy()
		h := &fakeHeap{db: 100000, actGarb: tc.garb}
		p.AfterCollection(Clock{AppIO: 1000}, h, collRes(0, 10, 10, 0))
		if got := p.LastEffectiveFrac(); got != tc.wantEff {
			t.Errorf("garbage %d: effFrac = %v, want %v", tc.garb, got, tc.wantEff)
		}
	}
}

func TestCoupledSchedulesLikeSAIOAtGoal(t *testing.T) {
	est := OracleEstimator{}
	p, err := NewCoupled(CoupledConfig{IOFrac: 0.10, GarbFrac: 0.10, InitialInterval: 50}, est)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ShouldCollect(Clock{AppIO: 50}) {
		t.Error("bootstrap ignored")
	}
	h := &fakeHeap{db: 100000, actGarb: 10000}
	// GCIO 40 at eff 10% -> interval 360, next at 1360.
	p.AfterCollection(Clock{AppIO: 1000}, h, collRes(0, 40, 0, 0))
	if p.ShouldCollect(Clock{AppIO: 1359}) || !p.ShouldCollect(Clock{AppIO: 1360}) {
		t.Error("coupled interval at goal differs from SAIO's")
	}
}

func TestOpportunisticValidation(t *testing.T) {
	inner, _ := NewFixedRate(100)
	est := OracleEstimator{}
	if _, err := NewOpportunistic(nil, est, 0.05); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewOpportunistic(inner, nil, 0.05); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := NewOpportunistic(inner, est, 1.5); err == nil {
		t.Error("bad floor accepted")
	}
	p, err := NewOpportunistic(inner, est, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p.Inner() != inner {
		t.Error("Inner() lost the wrapped policy")
	}
	if !strings.Contains(p.Name(), "opportunistic(fixed(100)") {
		t.Errorf("name = %q", p.Name())
	}
}

func TestOpportunisticDefersToInner(t *testing.T) {
	inner, _ := NewFixedRate(100)
	p, err := NewOpportunistic(inner, OracleEstimator{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p.ShouldCollect(Clock{Overwrites: 99}) {
		t.Error("collected before inner's interval")
	}
	if !p.ShouldCollect(Clock{Overwrites: 100}) {
		t.Error("inner's interval ignored")
	}
}

func TestOpportunisticIdlePredicate(t *testing.T) {
	inner, _ := NewFixedRate(100)
	p, err := NewOpportunistic(inner, OracleEstimator{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeap{db: 100000, actGarb: 10000} // 10% > 5% floor
	if !p.ShouldCollectIdle(Clock{}, h) {
		t.Error("idle collection refused above the floor")
	}
	h.actGarb = 4000 // 4% < 5%
	if p.ShouldCollectIdle(Clock{}, h) {
		t.Error("idle collection continued below the floor")
	}
	h.db = 0
	if p.ShouldCollectIdle(Clock{}, h) {
		t.Error("idle collection on an empty database")
	}
}
