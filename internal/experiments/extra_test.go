package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"odbgc/internal/metrics"
)

func findSeries(t *testing.T, rep *Report, name string) *metrics.Series {
	t.Helper()
	for _, s := range rep.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: series %q missing (have %v)", rep.ID, name, seriesNames(rep))
	return nil
}

func seriesNames(rep *Report) []string {
	var out []string
	for _, s := range rep.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 4 {
		t.Fatalf("fig2 rows = %d, want 4 phases", len(rep.Table.Rows))
	}
	// Traverse row: zero overwrites, zero garbage.
	trav := rep.Table.Rows[2]
	if trav[0] != "Traverse" || trav[2] != "0" || trav[3] != "0" {
		t.Errorf("traverse row = %v", trav)
	}
}

func TestFig6Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("fig6 series = %d, want 6", len(rep.Series))
	}
	// FGS/HB's estimate tracks actual; CGS/CB's does not.
	mad := func(a, b *metrics.Series) float64 {
		n := a.Len()
		if b.Len() < n {
			n = b.Len()
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += math.Abs(a.Points[i].Y - b.Points[i].Y)
		}
		return sum / float64(n)
	}
	cgs := mad(findSeries(t, rep, "cgs-cb_actual_pct"), findSeries(t, rep, "cgs-cb_estimated_pct"))
	fgs := mad(findSeries(t, rep, "fgs-hb_actual_pct"), findSeries(t, rep, "fgs-hb_estimated_pct"))
	t.Logf("estimate-vs-actual MAD: cgs=%.2f fgs=%.2f (pct points)", cgs, fgs)
	if fgs >= cgs {
		t.Errorf("fig6: fgs tracking (%.2f) not better than cgs (%.2f)", fgs, cgs)
	}
}

func TestFig7Shapes(t *testing.T) {
	r := NewRunner(fastOpts)
	repA, err := r.Fig7a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(repA.Series) != 6 {
		t.Fatalf("fig7a series = %d, want 6 (3 h values x actual/estimated)", len(repA.Series))
	}
	repB, err := r.Fig7b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(repB.Series) != 3 {
		t.Fatalf("fig7b series = %d, want rate/yield/garbage", len(repB.Series))
	}
	if !repB.PlotSeparate {
		t.Error("fig7b series have mixed units; must plot separately")
	}
	rate := findSeries(t, repB, "interval_overwrites")
	if rate.Len() < 20 {
		t.Errorf("fig7b too few collections: %d", rate.Len())
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, conn := range []string{"conn6", "conn9"} {
		saio := findSeries(t, rep, conn+"_saio_achieved")
		for _, p := range saio.Points {
			if math.Abs(p.Y-p.X) > p.X*0.25+1 {
				t.Errorf("fig8 %s saio: requested %.0f achieved %.2f", conn, p.X, p.Y)
			}
		}
		oracle := findSeries(t, rep, conn+"_saga_oracle_achieved")
		for _, p := range oracle.Points {
			if math.Abs(p.Y-p.X) > 2 {
				t.Errorf("fig8 %s saga/oracle: requested %.0f achieved %.2f", conn, p.X, p.Y)
			}
		}
	}
}

func TestAblationsShape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]map[string]string{}
	for _, row := range rep.Table.Rows {
		if vals[row[0]] == nil {
			vals[row[0]] = map[string]string{}
		}
		vals[row[0]][row[1]] = row[3]
	}
	num := func(s string) float64 {
		var f float64
		if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return f
	}
	sel := vals["selection@fixed(300)"]
	if num(sel["updated-pointer"]) < num(sel["round-robin"]) {
		t.Errorf("updated-pointer (%s MB) reclaimed less than round-robin (%s MB)",
			sel["updated-pointer"], sel["round-robin"])
	}
	fix := vals["fixup-model"]
	if num(fix["physical-fixups"]) <= num(fix["logical-oids"]) {
		t.Errorf("physical fixups (%s) not costlier than logical OIDs (%s)",
			fix["physical-fixups"], fix["logical-oids"])
	}
	buf := vals["buffer-size@saio(10%)"]
	if len(buf) != 3 {
		t.Errorf("buffer ablation rows = %d", len(buf))
	}
}

func TestEstimatorsStudyShape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Estimators(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 5 {
		t.Fatalf("estimator series = %d, want 5", len(rep.Series))
	}
	// The new design points must land in FGS/HB's class, far from CGS/CB.
	err10 := func(name string) float64 {
		s := findSeries(t, rep, "achieved_"+name)
		for _, p := range s.Points {
			if p.X == 10 {
				return math.Abs(p.Y - 10)
			}
		}
		t.Fatalf("no 10%% point for %s", name)
		return 0
	}
	if err10("fgs-window") > 2*err10("fgs-hb")+1 {
		t.Errorf("fgs-window error %.2f far from fgs-hb %.2f", err10("fgs-window"), err10("fgs-hb"))
	}
	if err10("cgs-cb") < err10("fgs-pp") {
		t.Errorf("cgs-cb (%.2f) beat fgs-pp (%.2f)", err10("cgs-cb"), err10("fgs-pp"))
	}
}

func TestControllersStudyShape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Controllers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("controller series = %d, want 4", len(rep.Series))
	}
	// With the oracle estimator both controllers should track well.
	for _, name := range []string{"achieved_saga_oracle", "achieved_pi_oracle"} {
		for _, p := range findSeries(t, rep, name).Points {
			if math.Abs(p.Y-p.X) > 3 {
				t.Errorf("%s: requested %.0f achieved %.2f", name, p.X, p.Y)
			}
		}
	}
}

func TestChurnStudyShape(t *testing.T) {
	rep, err := NewRunner(Options{Runs: 2}).Churn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// SAIO holds its I/O targets on the foreign workload.
	for _, p := range findSeries(t, rep, "saio_achieved").Points {
		if math.Abs(p.Y-p.X) > p.X*0.2 {
			t.Errorf("churn saio: requested %.0f achieved %.2f", p.X, p.Y)
		}
	}
	// The time-weighted slope variant repairs FGS/HB at the low target.
	tw := findSeries(t, rep, "saga/fgs-hb+tw_achieved")
	for _, p := range tw.Points {
		if math.Abs(p.Y-p.X) > 2 {
			t.Errorf("churn fgs-hb+tw: requested %.0f achieved %.2f", p.X, p.Y)
		}
	}
}

func TestRunnerAllNamesResolve(t *testing.T) {
	r := NewRunner(fastOpts)
	for _, name := range Names() {
		if name == "fig1" || name == "fig4" || name == "fig5" || name == "fig8" ||
			name == "estimators" || name == "controllers" || name == "churn" || name == "ablations" {
			continue // covered by dedicated tests; too slow to repeat here
		}
		if _, err := r.Run(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := r.Run("figZ"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown name error = %v", err)
	}
}

func TestReportPlotRendering(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig7b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	chart := rep.Plot()
	if !strings.Contains(chart, "interval_overwrites") || !strings.Contains(chart, "garbage_pct") {
		t.Errorf("plot missing series charts")
	}
	empty := &Report{ID: "x"}
	if empty.Plot() != "" {
		t.Error("empty report produced a plot")
	}
}
