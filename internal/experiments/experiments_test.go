package experiments

import (
	"context"
	"strings"
	"testing"

	"odbgc/internal/metrics"
)

// fastOpts shrinks run counts so the shape tests stay quick; shapes are
// asserted, absolute values logged for EXPERIMENTS.md.
var fastOpts = Options{Runs: 3}

func TestTable1(t *testing.T) {
	rep, err := NewRunner(fastOpts).Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !strings.Contains(rep.Table.String(), "NumAtomicPerComp") {
		t.Error("table1 missing parameter rows")
	}
}

func TestFig1Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	io := rep.Series[0]
	garb := rep.Series[1]
	// Figure 1's time/space tradeoff: both curves decrease from rate 50 to
	// rate 800 (not necessarily strictly monotone at every step).
	first, last := io.Points[0].Y, io.Points[len(io.Points)-1].Y
	if last >= first {
		t.Errorf("fig1a: total I/O at 800 (%.0f) not below I/O at 50 (%.0f)", last, first)
	}
	if first < 1.5*last {
		t.Errorf("fig1a: expected steep I/O cost at small intervals (%.0f vs %.0f)", first, last)
	}
	gFirst, gLast := garb.Points[0].Y, garb.Points[len(garb.Points)-1].Y
	if gLast >= gFirst {
		t.Errorf("fig1b: garbage collected at 800 (%.0f) not below at 50 (%.0f)", gLast, gFirst)
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	achieved := rep.Series[0]
	for _, p := range achieved.Points {
		req, got := p.X, p.Y
		if got < req*0.6 || got > req*1.5 {
			t.Errorf("fig4: requested %.0f%% achieved %.2f%%, outside [0.6x,1.5x]", req, got)
		}
	}
	// Achieved percentage must increase with the request.
	if achieved.Points[len(achieved.Points)-1].Y <= achieved.Points[0].Y {
		t.Error("fig4: achieved I/O pct not increasing with requested pct")
	}
}

func TestFig5Shape(t *testing.T) {
	rep, err := NewRunner(fastOpts).Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	var oracle, cgs, fgs *metrics.Series
	for _, s := range rep.Series {
		switch s.Name {
		case "achieved_oracle":
			oracle = s
		case "achieved_cgs-cb":
			cgs = s
		case "achieved_fgs-hb":
			fgs = s
		}
	}
	if oracle == nil || cgs == nil || fgs == nil {
		t.Fatal("fig5 missing estimator series")
	}
	var oracleErr, cgsErr, fgsErr float64
	for i := range oracle.Points {
		req := oracle.Points[i].X
		oracleErr += abs(oracle.Points[i].Y - req)
		cgsErr += abs(cgs.Points[i].Y - req)
		fgsErr += abs(fgs.Points[i].Y - req)
	}
	t.Logf("mean abs error: oracle=%.2f fgs=%.2f cgs=%.2f (pct points)",
		oracleErr/float64(len(oracle.Points)), fgsErr/float64(len(oracle.Points)), cgsErr/float64(len(oracle.Points)))
	// Paper ordering: oracle best, FGS/HB next, CGS/CB clearly worst.
	if !(oracleErr < fgsErr) {
		t.Errorf("fig5: oracle error %.2f not below fgs error %.2f", oracleErr, fgsErr)
	}
	if !(fgsErr < cgsErr) {
		t.Errorf("fig5: fgs error %.2f not below cgs error %.2f", fgsErr, cgsErr)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
