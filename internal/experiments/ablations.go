package experiments

import (
	"context"

	"fmt"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/oo7"
	"odbgc/internal/sim"
	"odbgc/internal/storage"
)

// Ablations studies the reproduction's own design choices, beyond the
// paper's figures: partition-selection policy, pointer-fixup cost model,
// buffer size relative to partitions (§3.1's discussion), and Reorg2's
// declustering batch size.
func (r *Runner) Ablations(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:    "ablations",
		Title: "Design-choice ablations (selection, fixups, buffer, declustering)",
	}
	t := &metrics.Table{Header: []string{"study", "variant", "metric", "value"}}

	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, 1)
	if err != nil {
		return nil, err
	}
	tr := traces[0]

	// 1. Partition selection at a fixed rate: reclaimed bytes.
	for _, selName := range []string{"updated-pointer", "hybrid", "round-robin", "random", "oracle-max-garbage"} {
		selName := selName
		pol, err := core.NewFixedRate(300)
		if err != nil {
			return nil, err
		}
		sel, err := gc.NewSelectionPolicy(selName, opts.SeedBase)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{Policy: pol, Selection: sel, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, tr)
		if err != nil {
			return nil, err
		}
		t.AddRow("selection@fixed(300)", selName, "reclaimed MB",
			fmt.Sprintf("%.2f", float64(res.TotalReclaimed)/(1<<20)))
	}

	// 2. Fixup cost model: GC I/O per collection.
	for _, fixups := range []bool{false, true} {
		name := "logical-oids"
		if fixups {
			name = "physical-fixups"
		}
		pol, err := core.NewFixedRate(300)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{Policy: pol, PhysicalFixups: fixups, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, tr)
		if err != nil {
			return nil, err
		}
		per := 0.0
		if n := len(res.Collections); n > 0 {
			per = float64(res.Final.GCIO()) / float64(n)
		}
		t.AddRow("fixup-model", name, "GC I/O per collection", fmt.Sprintf("%.1f", per))
	}

	// 3. Buffer size vs partition size (§3.1): total I/O under SAIO 10%.
	for _, pages := range []int{4, 12, 48} {
		pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
		if err != nil {
			return nil, err
		}
		cfg := storage.DefaultConfig()
		cfg.BufferPages = pages
		s, err := sim.New(sim.Config{Policy: pol, Storage: cfg, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, tr)
		if err != nil {
			return nil, err
		}
		t.AddRow("buffer-size@saio(10%)", fmt.Sprintf("%d pages", pages), "total I/O",
			fmt.Sprint(res.Final.TotalIO()))
	}

	// 4. Decluster batch: SAGA/FGS-HB achieved garbage at a 10% request.
	for _, batch := range []int{1, 10, 150} {
		p := oo7.SmallPrime(opts.Connectivity)
		p.DeclusterBatch = batch
		btr, err := oo7.FullTrace(p, opts.SeedBase)
		if err != nil {
			return nil, err
		}
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			return nil, err
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{Policy: pol, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, btr)
		if err != nil {
			return nil, err
		}
		t.AddRow("decluster-batch@saga(10%)", fmt.Sprint(batch), "achieved garbage %",
			fmt.Sprintf("%.2f", res.GarbageFrac*100))
	}

	rep.Table = t
	rep.Notes = append(rep.Notes,
		"updated-pointer should reclaim more than round-robin/random and approach the oracle bound",
		"physical fixups should multiply per-collection GC I/O severalfold",
		"a buffer below one partition should inflate total I/O (§3.1)",
		"larger decluster batches stress the controller with bigger garbage bursts")
	return rep, nil
}
