// Package experiments regenerates every table and figure of the paper's
// evaluation: the same rows and series, produced by the reproduction's
// simulator. Each experiment returns a Report with a printable table and/or
// CSV-able time series plus notes on how to read it against the paper.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/metrics"
	"odbgc/internal/oo7"
	"odbgc/internal/plot"
	"odbgc/internal/sim"
	"odbgc/internal/simerr"
	"odbgc/internal/trace"
)

// Options control experiment scale. The zero value reproduces the paper's
// methodology (connectivity 3, 10 runs, preamble 10).
type Options struct {
	// Connectivity is NumConnPerAtomic for the main experiments (default 3).
	Connectivity int
	// Runs is the number of seeded runs per data point (default 10).
	Runs int
	// SeedBase is the first seed (default 1).
	SeedBase int64
	// Preamble is the cold-start exclusion in collections (default 10).
	Preamble int
	// FaultProfile runs every batch under fault injection (see
	// internal/fault); the zero value injects nothing.
	FaultProfile fault.Profile
	// FaultSeed is the base seed for fault schedules; run i of a batch uses
	// FaultSeed+i.
	FaultSeed int64
	// CheckpointDir makes batches crash-safe at run granularity: completed
	// per-run results are cached under CheckpointDir/<experiment>-batchNNN/
	// and reruns load them instead of recomputing. The cache is keyed only
	// by batch order, so delete the directory after changing any experiment
	// parameter.
	CheckpointDir string
	// EventsDir writes each simulated run's structured JSONL event log under
	// EventsDir/<experiment>-batchNNN/run-NNN.jsonl (see internal/obs).
	// Batches satisfied from the checkpoint cache are not re-simulated and
	// write no events.
	EventsDir string
	// Parallel bounds per-batch run concurrency (and trace-generation
	// concurrency); zero means runtime.GOMAXPROCS(0). See
	// sim.RunnerConfig.Parallel.
	Parallel int
	// RunTimeout bounds each simulated run's wall-clock duration; a run
	// exceeding it fails classified as simerr.ErrTimeout. Zero disables the
	// deadline.
	RunTimeout time.Duration
	// MaxAttempts is the per-run retry budget for transient failures; zero
	// means one attempt. See sim.RunnerConfig.MaxAttempts.
	MaxAttempts int
	// Drain, when non-nil and closed, asks batches to stop scheduling new
	// runs: in-flight runs finish and checkpoint, and the experiment returns
	// an error classified as simerr.ErrCanceled. Rerunning with the same
	// CheckpointDir resumes from the completed runs.
	Drain <-chan struct{}
	// OnRunStatus receives batch progress reports. It is called concurrently
	// from worker goroutines.
	OnRunStatus func(sim.RunStatus)
}

func (o Options) withDefaults() Options {
	if o.Connectivity == 0 {
		o.Connectivity = 3
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	if o.Preamble == 0 {
		o.Preamble = 10
	}
	return o
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Table  *metrics.Table
	Series []*metrics.Series
	// XName labels the shared X axis of Series (for CSV output and plots).
	XName string
	// YName labels the Y axis of plots.
	YName string
	// PlotSeparate plots each series on its own chart (used when the
	// series have incomparable units, e.g. Figure 7b's rate vs yield vs
	// percentage).
	PlotSeparate bool
	Notes        []string
}

// Plot renders the report's series as ASCII charts, reproducing the
// paper's figure in a terminal. Reports without series return "".
func (r *Report) Plot() string {
	if len(r.Series) == 0 {
		return ""
	}
	base := plot.Options{
		Title:  fmt.Sprintf("%s: %s", r.ID, r.Title),
		Width:  72,
		Height: 20,
		XLabel: r.XName,
		YLabel: r.YName,
	}
	if !r.PlotSeparate {
		return plot.Render(base, r.Series...)
	}
	var b strings.Builder
	for _, s := range r.Series {
		opts := base
		opts.Title = fmt.Sprintf("%s: %s", r.ID, s.Name)
		opts.Height = 12
		b.WriteString(plot.Render(opts, s))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the report as text.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		s += r.Table.String()
	}
	if len(r.Series) > 0 {
		s += metrics.CSV(r.XName, r.Series...)
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// traceCache shares generated traces across experiments with the same
// parameters, since trace generation dominates sweep cost. It generates
// under the caller's context and the runner's concurrency bound.
type traceCache struct {
	r *Runner
	m map[string][]*trace.Trace
}

func (tc *traceCache) get(ctx context.Context, conn int, base int64, n int) ([]*trace.Trace, error) {
	key := fmt.Sprintf("%d/%d/%d", conn, base, n)
	if ts, ok := tc.m[key]; ok {
		return ts, nil
	}
	ts, err := sim.GenerateTracesContext(ctx, oo7.SmallPrime(conn), base, n, tc.r.opts.Parallel)
	if err != nil {
		return nil, err
	}
	tc.m[key] = ts
	return ts, nil
}

// Runner executes experiments, sharing trace generation between them.
// Cancellation arrives as the explicit ctx argument every experiment method
// takes as its first parameter; the runner itself never holds a context.
type Runner struct {
	opts   Options
	traces *traceCache

	// curExp and batch key the per-batch checkpoint subdirectories while an
	// experiment runs.
	curExp string
	batch  int
}

// runMany is sim.RunManyContext with the caller's context and the runner's
// fault-injection, checkpoint, and supervision options applied. Each batch
// within an experiment gets its own checkpoint subdirectory, numbered in
// execution order.
func (r *Runner) runMany(ctx context.Context, cfg sim.RunnerConfig) (*sim.MultiResult, error) {
	cfg.FaultProfile = r.opts.FaultProfile
	cfg.FaultSeed = r.opts.FaultSeed
	cfg.Parallel = r.opts.Parallel
	cfg.RunTimeout = r.opts.RunTimeout
	cfg.MaxAttempts = r.opts.MaxAttempts
	cfg.Drain = r.opts.Drain
	cfg.OnRunStatus = r.opts.OnRunStatus
	if r.opts.CheckpointDir != "" || r.opts.EventsDir != "" {
		r.batch++
	}
	if r.opts.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(r.opts.CheckpointDir,
			fmt.Sprintf("%s-batch%03d", r.curExp, r.batch))
	}
	if r.opts.EventsDir != "" {
		cfg.EventsDir = filepath.Join(r.opts.EventsDir,
			fmt.Sprintf("%s-batch%03d", r.curExp, r.batch))
	}
	return sim.RunManyContext(ctx, cfg)
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	r := &Runner{opts: opts.withDefaults()}
	r.traces = &traceCache{r: r, m: make(map[string][]*trace.Trace)}
	return r
}

// Names lists the experiment identifiers in paper order, followed by the
// reproduction's own ablation study.
func Names() []string {
	return []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8",
		"ablations", "estimators", "controllers", "churn"}
}

// Run executes one experiment by name.
func (r *Runner) Run(name string) (*Report, error) {
	return r.RunContext(context.Background(), name)
}

// RunContext executes one experiment by name under ctx: cancelling ctx
// aborts the experiment's batches (classified simerr.ErrCanceled), and the
// supervision options in Options (Parallel, RunTimeout, MaxAttempts, Drain)
// apply to every batch it runs.
func (r *Runner) RunContext(ctx context.Context, name string) (*Report, error) {
	r.curExp, r.batch = name, 0
	switch name {
	case "table1":
		return r.Table1(ctx)
	case "fig1":
		return r.Fig1(ctx)
	case "fig2":
		return r.Fig2(ctx)
	case "fig4":
		return r.Fig4(ctx)
	case "fig5":
		return r.Fig5(ctx)
	case "fig6":
		return r.Fig6(ctx)
	case "fig7a":
		return r.Fig7a(ctx)
	case "fig7b":
		return r.Fig7b(ctx)
	case "fig8":
		return r.Fig8(ctx)
	case "ablations":
		return r.Ablations(ctx)
	case "estimators":
		return r.Estimators(ctx)
	case "controllers":
		return r.Controllers(ctx)
	case "churn":
		return r.Churn(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]*Report, error) {
	return r.AllContext(context.Background())
}

// AllContext runs every experiment in paper order under ctx, stopping at
// the first failure or cancellation; the reports completed so far are
// returned alongside the error.
func (r *Runner) AllContext(ctx context.Context) ([]*Report, error) {
	var out []*Report
	for _, name := range Names() {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, simerr.FromContext(err))
		}
		rep, err := r.RunContext(ctx, name)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// Table1 reports the OO7 Small' parameters and the derived database sizes
// across connectivities, against the paper's 3.7–7.9 MB band.
func (r *Runner) Table1(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "OO7 benchmark database parameters and derived structure",
	}
	t := &metrics.Table{Header: []string{"parameter", "Small'", "Small"}}
	sp, s := oo7.SmallPrime(3), oo7.Small(3)
	rows := []struct {
		name     string
		sp, smol int
	}{
		{"NumAtomicPerComp", sp.NumAtomicPerComp, s.NumAtomicPerComp},
		{"NumConnPerAtomic", sp.NumConnPerAtomic, s.NumConnPerAtomic},
		{"DocumentSize (bytes)", sp.DocumentBytes, s.DocumentBytes},
		{"ManualSize (kbytes)", sp.ManualBytes / 1024, s.ManualBytes / 1024},
		{"NumCompPerModule", sp.NumCompPerModule, s.NumCompPerModule},
		{"NumAssmPerAssm", sp.NumAssmPerAssm, s.NumAssmPerAssm},
		{"NumAssmLevels", sp.NumAssmLevels, s.NumAssmLevels},
		{"NumCompPerAssm", sp.NumCompPerAssm, s.NumCompPerAssm},
		{"NumModules", sp.NumModules, s.NumModules},
	}
	for _, row := range rows {
		t.AddRow(row.name, fmt.Sprint(row.sp), fmt.Sprint(row.smol))
	}
	rep.Table = t

	st := &metrics.Table{Header: []string{
		"connectivity", "objects", "bytes", "MB", "avg object B", "atomic in-degree",
	}}
	for _, conn := range []int{3, 6, 9} {
		g, err := oo7.NewGenerator(oo7.SmallPrime(conn), r.opts.SeedBase)
		if err != nil {
			return nil, err
		}
		if err := g.GenDB(); err != nil {
			return nil, err
		}
		info := g.Info()
		st.AddRow(fmt.Sprint(conn), fmt.Sprint(info.Objects), fmt.Sprint(info.Bytes),
			fmt.Sprintf("%.2f", float64(info.Bytes)/(1<<20)),
			fmt.Sprintf("%.1f", info.AvgObjectSize),
			fmt.Sprintf("%.2f", info.AvgAtomicInDegree))
	}
	rep.Notes = append(rep.Notes,
		"paper: Small' database ranges ~3.7-7.9 MB over connectivities 3/6/9",
		"derived structure table follows the parameter table:\n"+st.String())
	return rep, nil
}

// Fig2 reports the application phase sequence and per-phase event counts.
func (r *Runner) Fig2(ctx context.Context) (*Report, error) {
	opts := r.opts
	tr, err := oo7.FullTrace(oo7.SmallPrime(opts.Connectivity), opts.SeedBase)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig2", Title: "Phases of the OO7 test application"}
	t := &metrics.Table{Header: []string{"phase", "events", "overwrites", "garbage bytes"}}
	type agg struct{ events, ow, garb int }
	var cur string
	perPhase := map[string]*agg{}
	var order []string
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind == trace.KindPhase {
			cur = e.Label
			perPhase[cur] = &agg{}
			order = append(order, cur)
			continue
		}
		a := perPhase[cur]
		if a == nil {
			continue
		}
		a.events++
		if e.Kind == trace.KindOverwrite && !e.Init {
			a.ow++
		}
		a.garb += e.DeadBytes()
	}
	for _, ph := range order {
		a := perPhase[ph]
		t.AddRow(ph, fmt.Sprint(a.events), fmt.Sprint(a.ow), fmt.Sprint(a.garb))
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"GenDB -> Reorg1 -> Traverse -> Reorg2; Traverse is read-only (no overwrites, no garbage)")
	return rep, nil
}

// Fig1 sweeps fixed collection rates and reports total I/O operations
// (Figure 1a) and total garbage collected (Figure 1b).
func (r *Runner) Fig1(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, opts.Runs)
	if err != nil {
		return nil, err
	}
	rates := []int{50, 100, 150, 200, 300, 400, 600, 800}
	rep := &Report{
		ID:           "fig1",
		Title:        "Collection rate vs I/O operations (a) and total garbage collected (b)",
		XName:        "overwrites_per_collection",
		YName:        "total I/O operations / garbage bytes",
		PlotSeparate: true,
	}
	ioSeries := &metrics.Series{Name: "total_io_ops"}
	garbSeries := &metrics.Series{Name: "garbage_collected_bytes"}
	t := &metrics.Table{Header: []string{
		"rate (ow/coll)", "total I/O ops", "io min", "io max", "garbage collected B", "gc B min", "gc B max", "collections",
	}}
	for _, rate := range rates {
		rate := rate
		mr, err := r.runMany(ctx, sim.RunnerConfig{
			Traces: traces,
			MakePolicy: func(int) (core.RatePolicy, error) {
				return core.NewFixedRate(rate)
			},
			PreambleCollections: opts.Preamble,
		})
		if err != nil {
			return nil, err
		}
		ioSeries.Add(float64(rate), mr.TotalIO.Mean)
		garbSeries.Add(float64(rate), mr.Reclaimed.Mean)
		t.AddRow(fmt.Sprint(rate),
			fmt.Sprintf("%.0f", mr.TotalIO.Mean),
			fmt.Sprintf("%.0f", mr.TotalIO.Min),
			fmt.Sprintf("%.0f", mr.TotalIO.Max),
			fmt.Sprintf("%.0f", mr.Reclaimed.Mean),
			fmt.Sprintf("%.0f", mr.Reclaimed.Min),
			fmt.Sprintf("%.0f", mr.Reclaimed.Max),
			fmt.Sprintf("%.1f", mr.Collections.Mean))
	}
	rep.Table = t
	rep.Series = []*metrics.Series{ioSeries, garbSeries}
	rep.Notes = append(rep.Notes,
		"shape: total I/O falls steeply as the interval grows; garbage collected falls too (time/space tradeoff)")
	return rep, nil
}

// saioFracs is the Figure 4 sweep of requested collector-I/O percentages.
var saioFracs = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}

// Fig4 sweeps SAIO_Frac and reports achieved collector-I/O percentage with
// min/max bars over the seeded runs.
func (r *Runner) Fig4(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, opts.Runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig4",
		Title: "Effectiveness of SAIO policy vs requested I/O percentage",
		XName: "requested_io_pct",
		YName: "achieved GC I/O %",
	}
	rep.Series = []*metrics.Series{
		{Name: "achieved_io_pct"}, {Name: "min_pct"}, {Name: "max_pct"},
	}
	t := &metrics.Table{Header: []string{"requested %", "achieved %", "min %", "max %", "collections"}}
	for _, frac := range saioFracs {
		frac := frac
		mr, err := r.runMany(ctx, sim.RunnerConfig{
			Traces: traces,
			MakePolicy: func(int) (core.RatePolicy, error) {
				return core.NewSAIO(core.SAIOConfig{Frac: frac})
			},
			PreambleCollections: opts.Preamble,
		})
		if err != nil {
			return nil, err
		}
		rep.Series[0].Add(frac*100, mr.GCIO.Mean*100)
		rep.Series[1].Add(frac*100, mr.GCIO.Min*100)
		rep.Series[2].Add(frac*100, mr.GCIO.Max*100)
		t.AddRow(fmt.Sprintf("%.0f", frac*100),
			fmt.Sprintf("%.2f", mr.GCIO.Mean*100),
			fmt.Sprintf("%.2f", mr.GCIO.Min*100),
			fmt.Sprintf("%.2f", mr.GCIO.Max*100),
			fmt.Sprintf("%.1f", mr.Collections.Mean))
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"shape: achieved tracks requested along the diagonal; slight upward drift and wider bars at the highest percentages (§4.1.1)")
	return rep, nil
}

// sagaFracs is the Figure 5 sweep of requested garbage percentages.
var sagaFracs = []float64{0.03, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}

// sagaEstimators lists the Figure 5 estimator variants.
var sagaEstimators = []string{"oracle", "cgs-cb", "fgs-hb"}

// Fig5 sweeps SAGA_Frac for each garbage estimator and reports achieved
// garbage percentage with min/max bars.
func (r *Runner) Fig5(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, opts.Runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig5",
		Title: "Effectiveness of SAGA policy vs requested garbage percentage",
		XName: "requested_garbage_pct",
		YName: "achieved garbage %",
	}
	t := &metrics.Table{Header: []string{"estimator", "requested %", "achieved %", "min %", "max %", "collections"}}
	for _, estName := range sagaEstimators {
		estName := estName
		series := &metrics.Series{Name: "achieved_" + estName}
		for _, frac := range sagaFracs {
			frac := frac
			mr, err := r.runMany(ctx, sim.RunnerConfig{
				Traces: traces,
				MakePolicy: func(int) (core.RatePolicy, error) {
					est, err := core.NewEstimator(estName, 0.8)
					if err != nil {
						return nil, err
					}
					return core.NewSAGA(core.SAGAConfig{Frac: frac}, est)
				},
				PreambleCollections: opts.Preamble,
			})
			if err != nil {
				return nil, err
			}
			series.Add(frac*100, mr.Garbage.Mean*100)
			t.AddRow(estName, fmt.Sprintf("%.0f", frac*100),
				fmt.Sprintf("%.2f", mr.Garbage.Mean*100),
				fmt.Sprintf("%.2f", mr.Garbage.Min*100),
				fmt.Sprintf("%.2f", mr.Garbage.Max*100),
				fmt.Sprintf("%.1f", mr.Collections.Mean))
		}
		rep.Series = append(rep.Series, series)
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"shape: oracle hugs the diagonal; fgs-hb close with a systematic bump; cgs-cb far off with wide bars (§4.1.2)")
	return rep, nil
}

// Fig6 produces the time-varying target/actual/estimated garbage series for
// the CGS/CB (a) and FGS/HB (b) heuristics at a 10% request.
func (r *Runner) Fig6(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig6",
		Title: "Time-varying garbage estimation, CGS/CB (a) and FGS/HB (b), 10% request",
		XName: "collection",
		YName: "garbage % of database",
	}
	for _, estName := range []string{"cgs-cb", "fgs-hb"} {
		est, err := core.NewEstimator(estName, 0.8)
		if err != nil {
			return nil, err
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{Policy: pol, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, traces[0])
		if err != nil {
			return nil, err
		}
		target := &metrics.Series{Name: estName + "_target_pct"}
		actual := &metrics.Series{Name: estName + "_actual_pct"}
		estd := &metrics.Series{Name: estName + "_estimated_pct"}
		for _, c := range res.Collections {
			x := float64(c.Index)
			target.Add(x, c.TargetGarbageFrac*100)
			actual.Add(x, c.ActualGarbageFrac*100)
			estd.Add(x, c.EstimatedGarbageFrac*100)
		}
		rep.Series = append(rep.Series, target, actual, estd)
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d collections, mean sampled garbage %.2f%%",
			estName, len(res.Collections), res.GarbageFrac*100))
	}
	rep.Notes = append(rep.Notes,
		"shape: cgs-cb estimate swings wildly and overestimates; fgs-hb tracks actual closely through phase changes")
	return rep, nil
}

// Fig7a studies the FGS/HB history parameter h ∈ {0.50, 0.80, 0.95} at a
// 10% request, reporting estimated and actual garbage per collection.
func (r *Runner) Fig7a(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig7a",
		Title: "History parameter study of the FGS/HB heuristic (10% request)",
		XName: "collection",
		YName: "garbage % of database",
	}
	for _, h := range []float64{0.50, 0.80, 0.95} {
		est, err := core.NewFGSHB(h)
		if err != nil {
			return nil, err
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{Policy: pol, PreambleCollections: opts.Preamble})
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx, traces[0])
		if err != nil {
			return nil, err
		}
		actual := &metrics.Series{Name: fmt.Sprintf("h%.0f_actual_pct", h*100)}
		estd := &metrics.Series{Name: fmt.Sprintf("h%.0f_estimated_pct", h*100)}
		for _, c := range res.Collections {
			actual.Add(float64(c.Index), c.ActualGarbageFrac*100)
			estd.Add(float64(c.Index), c.EstimatedGarbageFrac*100)
		}
		rep.Series = append(rep.Series, actual, estd)
		rep.Notes = append(rep.Notes, fmt.Sprintf("h=%.2f: %d collections, mean sampled garbage %.2f%%",
			h, len(res.Collections), res.GarbageFrac*100))
	}
	rep.Notes = append(rep.Notes,
		"shape: h=0.95 adapts slowly (large swings at phase changes); h=0.50 responds fast but oscillates; h=0.80 is the practical compromise")
	return rep, nil
}

// Fig7b reports collection rate, collection yield and garbage percentage
// over time for FGS/HB with h = 0.8 at a 10% request.
func (r *Runner) Fig7b(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, 1)
	if err != nil {
		return nil, err
	}
	est, err := core.NewFGSHB(0.8)
	if err != nil {
		return nil, err
	}
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{Policy: pol, PreambleCollections: opts.Preamble})
	if err != nil {
		return nil, err
	}
	res, err := s.RunContext(ctx, traces[0])
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:           "fig7b",
		Title:        "Collection rate, yield and garbage percentage over time (FGS/HB, h=0.8, 10%)",
		XName:        "collection",
		YName:        "per-series units",
		PlotSeparate: true,
	}
	rate := &metrics.Series{Name: "interval_overwrites"}
	yield := &metrics.Series{Name: "yield_bytes"}
	garb := &metrics.Series{Name: "garbage_pct"}
	for _, c := range res.Collections {
		x := float64(c.Index)
		rate.Add(x, float64(c.Interval))
		yield.Add(x, float64(c.ReclaimedBytes))
		garb.Add(x, c.ActualGarbageFrac*100)
	}
	rep.Series = []*metrics.Series{rate, yield, garb}
	for _, m := range res.Phases {
		rep.Notes = append(rep.Notes, fmt.Sprintf("phase %s begins at collection %d", m.Label, m.Collections))
	}
	rep.Notes = append(rep.Notes,
		"shape: cold-start transient, then the rate settles; at the Reorg1->Traverse->Reorg2 transition the rate destabilizes and yield drops (§4.1.2)")
	return rep, nil
}

// Fig8 repeats the SAIO and SAGA accuracy sweeps at connectivities 6 and 9
// (one run per point, as in the paper).
func (r *Runner) Fig8(ctx context.Context) (*Report, error) {
	opts := r.opts
	rep := &Report{
		ID:    "fig8",
		Title: "Sensitivity of policy accuracy to database connectivity",
		XName: "requested_pct",
		YName: "achieved %",
	}
	t := &metrics.Table{Header: []string{"connectivity", "policy", "requested %", "achieved %"}}
	for _, conn := range []int{6, 9} {
		traces, err := r.traces.get(ctx, conn, opts.SeedBase, 1)
		if err != nil {
			return nil, err
		}
		saio := &metrics.Series{Name: fmt.Sprintf("conn%d_saio_achieved", conn)}
		for _, frac := range saioFracs {
			frac := frac
			mr, err := r.runMany(ctx, sim.RunnerConfig{
				Traces: traces,
				MakePolicy: func(int) (core.RatePolicy, error) {
					return core.NewSAIO(core.SAIOConfig{Frac: frac})
				},
				PreambleCollections: opts.Preamble,
			})
			if err != nil {
				return nil, err
			}
			saio.Add(frac*100, mr.GCIO.Mean*100)
			t.AddRow(fmt.Sprint(conn), "saio", fmt.Sprintf("%.0f", frac*100), fmt.Sprintf("%.2f", mr.GCIO.Mean*100))
		}
		rep.Series = append(rep.Series, saio)
		for _, estName := range []string{"oracle", "fgs-hb"} {
			estName := estName
			saga := &metrics.Series{Name: fmt.Sprintf("conn%d_saga_%s_achieved", conn, estName)}
			for _, frac := range sagaFracs {
				frac := frac
				mr, err := r.runMany(ctx, sim.RunnerConfig{
					Traces: traces,
					MakePolicy: func(int) (core.RatePolicy, error) {
						est, err := core.NewEstimator(estName, 0.8)
						if err != nil {
							return nil, err
						}
						return core.NewSAGA(core.SAGAConfig{Frac: frac}, est)
					},
					PreambleCollections: opts.Preamble,
				})
				if err != nil {
					return nil, err
				}
				saga.Add(frac*100, mr.Garbage.Mean*100)
				t.AddRow(fmt.Sprint(conn), "saga/"+estName, fmt.Sprintf("%.0f", frac*100), fmt.Sprintf("%.2f", mr.Garbage.Mean*100))
			}
			rep.Series = append(rep.Series, saga)
		}
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"shape: results consistent with figures 4 and 5 (connectivity 3), supporting policy effectiveness across connectivities")
	return rep, nil
}
