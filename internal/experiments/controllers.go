package experiments

import (
	"context"

	"fmt"

	"odbgc/internal/core"
	"odbgc/internal/metrics"
	"odbgc/internal/sim"
)

// Estimators compares all garbage estimators under the SAGA controller —
// the paper's two (CGS/CB, FGS/HB), its oracle, and this reproduction's
// additional design-space points (windowed FGS, per-partition FGS) — at a
// sweep of requested garbage levels.
func (r *Runner) Estimators(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, opts.Runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "estimators",
		Title: "Garbage estimator study under the SAGA controller",
		XName: "requested_garbage_pct",
	}
	t := &metrics.Table{Header: []string{"estimator", "requested %", "achieved %", "min %", "max %", "collections"}}
	for _, estName := range []string{"oracle", "cgs-cb", "fgs-hb", "fgs-window", "fgs-pp"} {
		estName := estName
		series := &metrics.Series{Name: "achieved_" + estName}
		for _, frac := range []float64{0.05, 0.10, 0.20} {
			frac := frac
			mr, err := r.runMany(ctx, sim.RunnerConfig{
				Traces: traces,
				MakePolicy: func(int) (core.RatePolicy, error) {
					est, err := core.NewEstimator(estName, 0)
					if err != nil {
						return nil, err
					}
					return core.NewSAGA(core.SAGAConfig{Frac: frac}, est)
				},
				PreambleCollections: opts.Preamble,
			})
			if err != nil {
				return nil, err
			}
			series.Add(frac*100, mr.Garbage.Mean*100)
			t.AddRow(estName, fmt.Sprintf("%.0f", frac*100),
				fmt.Sprintf("%.2f", mr.Garbage.Mean*100),
				fmt.Sprintf("%.2f", mr.Garbage.Min*100),
				fmt.Sprintf("%.2f", mr.Garbage.Max*100),
				fmt.Sprintf("%.1f", mr.Collections.Mean))
		}
		rep.Series = append(rep.Series, series)
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"fgs-window and fgs-pp are this reproduction's additional design-space points (§2.4 mentions more heuristics than the two detailed)")
	return rep, nil
}

// Controllers compares the paper's SAGA controller against a textbook PI
// controller at the same garbage targets, with the oracle and FGS/HB
// estimators.
func (r *Runner) Controllers(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces, err := r.traces.get(ctx, opts.Connectivity, opts.SeedBase, opts.Runs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "controllers",
		Title: "SAGA vs PI garbage-level controllers",
		XName: "requested_garbage_pct",
	}
	t := &metrics.Table{Header: []string{"controller", "estimator", "requested %", "achieved %", "max %", "collections"}}
	for _, ctl := range []string{"saga", "pi"} {
		ctl := ctl
		for _, estName := range []string{"oracle", "fgs-hb"} {
			estName := estName
			series := &metrics.Series{Name: fmt.Sprintf("achieved_%s_%s", ctl, estName)}
			for _, frac := range []float64{0.05, 0.10, 0.20} {
				frac := frac
				mr, err := r.runMany(ctx, sim.RunnerConfig{
					Traces: traces,
					MakePolicy: func(int) (core.RatePolicy, error) {
						est, err := core.NewEstimator(estName, 0)
						if err != nil {
							return nil, err
						}
						if ctl == "pi" {
							return core.NewPIController(core.PIConfig{Frac: frac}, est)
						}
						return core.NewSAGA(core.SAGAConfig{Frac: frac}, est)
					},
					PreambleCollections: opts.Preamble,
				})
				if err != nil {
					return nil, err
				}
				series.Add(frac*100, mr.Garbage.Mean*100)
				t.AddRow(ctl, estName, fmt.Sprintf("%.0f", frac*100),
					fmt.Sprintf("%.2f", mr.Garbage.Mean*100),
					fmt.Sprintf("%.2f", mr.Garbage.Max*100),
					fmt.Sprintf("%.1f", mr.Collections.Mean))
			}
			rep.Series = append(rep.Series, series)
		}
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"SAGA's feed-forward slope term should track targets more tightly than the model-free PI controller, at comparable collection counts")
	return rep, nil
}
