package experiments

import (
	"context"

	"fmt"

	"odbgc/internal/core"
	"odbgc/internal/metrics"
	"odbgc/internal/sim"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

// Churn probes the §5 robustness question — do applications other than OO7
// violate the policies' assumptions? — on the directory/file churn
// workload: leaf-object garbage (no clusters), hot/cold update skew, and
// bursty phase structure.
func (r *Runner) Churn(ctx context.Context) (*Report, error) {
	opts := r.opts
	traces := make([]*trace.Trace, opts.Runs)
	for i := range traces {
		tr, err := workload.Churn(workload.DefaultChurn(), opts.SeedBase+int64(i))
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	rep := &Report{
		ID:    "churn",
		Title: "Policy accuracy on the non-OO7 churn workload",
		XName: "requested_pct",
		YName: "achieved %",
	}
	t := &metrics.Table{Header: []string{"policy", "requested %", "achieved %", "min %", "max %", "collections"}}

	saio := &metrics.Series{Name: "saio_achieved"}
	for _, frac := range []float64{0.10, 0.20, 0.30} {
		frac := frac
		mr, err := r.runMany(ctx, sim.RunnerConfig{
			Traces: traces,
			MakePolicy: func(int) (core.RatePolicy, error) {
				return core.NewSAIO(core.SAIOConfig{Frac: frac})
			},
			PreambleCollections: opts.Preamble,
		})
		if err != nil {
			return nil, err
		}
		saio.Add(frac*100, mr.GCIO.Mean*100)
		t.AddRow("saio", fmt.Sprintf("%.0f", frac*100),
			fmt.Sprintf("%.2f", mr.GCIO.Mean*100),
			fmt.Sprintf("%.2f", mr.GCIO.Min*100),
			fmt.Sprintf("%.2f", mr.GCIO.Max*100),
			fmt.Sprintf("%.1f", mr.Collections.Mean))
	}
	rep.Series = append(rep.Series, saio)

	variants := []struct {
		label    string
		estName  string
		slopeRef uint64
	}{
		{"saga/oracle", "oracle", 0},
		{"saga/fgs-hb", "fgs-hb", 0},
		{"saga/fgs-hb+tw", "fgs-hb", 100}, // time-weighted slope smoothing
	}
	for _, v := range variants {
		v := v
		series := &metrics.Series{Name: v.label + "_achieved"}
		for _, frac := range []float64{0.05, 0.10, 0.20} {
			frac := frac
			mr, err := r.runMany(ctx, sim.RunnerConfig{
				Traces: traces,
				MakePolicy: func(int) (core.RatePolicy, error) {
					est, err := core.NewEstimator(v.estName, 0)
					if err != nil {
						return nil, err
					}
					return core.NewSAGA(core.SAGAConfig{Frac: frac, SlopeRef: v.slopeRef}, est)
				},
				PreambleCollections: opts.Preamble,
			})
			if err != nil {
				return nil, err
			}
			series.Add(frac*100, mr.Garbage.Mean*100)
			t.AddRow(v.label, fmt.Sprintf("%.0f", frac*100),
				fmt.Sprintf("%.2f", mr.Garbage.Mean*100),
				fmt.Sprintf("%.2f", mr.Garbage.Min*100),
				fmt.Sprintf("%.2f", mr.Garbage.Max*100),
				fmt.Sprintf("%.1f", mr.Collections.Mean))
		}
		rep.Series = append(rep.Series, series)
	}
	rep.Table = t
	rep.Notes = append(rep.Notes,
		"churn garbage is leaf objects, so the naive connectivity-based prediction §2.1 faults on OO7 is nearly exact here",
		"finding: the paper's per-observation slope smoothing can trap SAGA/FGS-HB at low targets on this workload (estimator noise over Δt_min intervals flips the slope sign); the +tw variant weights slope samples by elapsed time and recovers",
		"shape: SAIO and SAGA/oracle hold their targets despite the different garbage anatomy and the burst/quiet phase structure")
	return rep, nil
}
