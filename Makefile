# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race race vet lint lint-concurrency lint-fix-report lint-allocbudget fuzz bench bench-diff experiments examples soak server-smoke crash-drill clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repository invariants: determinism (direct and transitive), panic-free
# libraries, snapshot completeness, context threading, error discipline,
# cancelable goroutines, the performance layer (hot-path allocation,
# boxing, defer, and append-growth checks plus the allocation budget in
# lint/allocbudget.json), and the concurrency-safety layer (lockcheck,
# guarded, lifecycle — see README "Code invariants" and internal/analysis).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/odbglint -allocbudget ./...

# Just the concurrency-safety analyzers: mutex discipline, guarded-field
# inference, and call-order lifecycle protocols. A fast pre-commit check
# when touching the serving or durability stack.
lint-concurrency:
	$(GO) run ./cmd/odbglint -only lockcheck,guarded,lifecycle ./...

# Re-baseline the per-hot-function allocation budget after deliberate
# changes; the diff to lint/allocbudget.json is the reviewable artifact.
lint-allocbudget:
	$(GO) run ./cmd/odbglint -write-allocbudget ./...

# Every open finding as a file:line path, one per line, for editors and
# scripted triage. Exits zero even with findings; `make lint` is the gate.
lint-fix-report:
	@$(GO) run ./cmd/odbglint ./... | sed 's/: .*//' | sort -u || true

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Quicker race pass over just the concurrent packages.
race:
	$(GO) test -race ./internal/sim/ ./internal/metrics/

# Short fuzz passes over the trace decoders and the WAL scanner.
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzJSONReader -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzScanWAL -fuzztime 15s ./internal/storage/disk/

# Benchmark sweep. One iteration per benchmark keeps the sweep quick; the
# parsed JSON baseline (ns/op, allocs/op per benchmark) lands in
# BENCH_PR10.json for mechanical diffing across PRs.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x . | $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# Per-benchmark deltas against the previous committed baseline — the
# one-command perf claim for PR bodies. The threshold is 50% because the
# committed baselines run at -benchtime 1x, where ns/op carries real
# noise; allocs/op is exact at any iteration count. A benchmark missing
# from the new baseline is itself a failure.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_PR9.json BENCH_PR10.json -threshold 50

# Full paper regeneration: every table and figure, 10 seeded runs per data
# point, CSV series under results/.
experiments:
	$(GO) run ./cmd/experiments -csvdir results

# Interrupt/resume soak: a chaos-profile sweep under -race is SIGINT-ed
# mid-flight, resumed from its checkpoint directory, and must match an
# uninterrupted reference byte for byte (see README "Resilience").
soak:
	./scripts/soak.sh

# Overload smoke: odbgcd (built -race) under a 4x chaos burst from
# odbgload must shed on /metrics and drain cleanly on SIGINT mid-load
# (see README "Serving mode").
server-smoke:
	./scripts/server_smoke.sh

# Durability drill: the deterministic crash-point sweep under -race, then a
# live SIGKILL of odbgcd mid-overload with offline recovery verification,
# restart on the same data dir, /metrics recovery counters, and a clean
# drain (see README "Durability & crash recovery").
crash-drill:
	./scripts/crash_drill.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/custompolicy
	$(GO) run ./examples/connectivity
	$(GO) run ./examples/opportunistic
	$(GO) run ./examples/customworkload

clean:
	rm -rf results test_output.txt bench_output.txt
