package odbgc_test

import (
	"bytes"
	"fmt"
	"log"

	"odbgc"
)

// The smallest end-to-end use: generate the paper's workload and let SAIO
// hold collector I/O at 10% of total I/O.
func ExampleSimulate() {
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requested 10%%, achieved within 2 points: %v\n", res.GCIOFrac > 0.08 && res.GCIOFrac < 0.12)
	// Output: requested 10%, achieved within 2 points: true
}

// SAGA holds a garbage level instead, using the practical FGS/HB estimator.
func ExampleNewSAGA() {
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	est, err := odbgc.NewFGSHB(0.8)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := odbgc.NewSAGA(odbgc.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("garbage held near 10%%: %v\n", res.GarbageFrac > 0.05 && res.GarbageFrac < 0.20)
	// Output: garbage held near 10%: true
}

// Traces round-trip through the compact binary format and can be replayed
// as a stream without materializing.
func ExampleSimulateStream() {
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := odbgc.WriteTrace(&buf, tr); err != nil {
		log.Fatal(err)
	}
	policy, err := odbgc.NewFixedRate(300)
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.SimulateStream(&buf, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed run collected: %v\n", len(res.Collections) > 0)
	// Output: streamed run collected: true
}
