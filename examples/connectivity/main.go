// Connectivity: the paper's Figure 8 question — do the policies keep their
// accuracy as the database's object connectivity changes? This example
// sweeps NumConnPerAtomic over {3, 6, 9}, runs SAIO and SAGA at a few
// requested levels, and tabulates requested vs achieved.
package main

import (
	"fmt"
	"log"

	"odbgc"
)

func main() {
	fmt.Println("connectivity sensitivity (requested vs achieved)")
	fmt.Println()
	fmt.Printf("%-5s %-22s %-11s %-10s %-12s\n", "conn", "policy", "requested", "achieved", "collections")

	for _, conn := range []int{3, 6, 9} {
		tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: conn, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}

		for _, frac := range []float64{0.10, 0.25} {
			policy, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: frac})
			if err != nil {
				log.Fatal(err)
			}
			res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5d %-22s %9.0f%% %9.2f%% %8d\n",
				conn, "SAIO", frac*100, res.GCIOFrac*100, len(res.Collections))
		}

		for _, frac := range []float64{0.05, 0.15} {
			for _, estName := range []string{"oracle", "fgs-hb"} {
				est, err := odbgc.NewEstimator(estName, 0.8)
				if err != nil {
					log.Fatal(err)
				}
				policy, err := odbgc.NewSAGA(odbgc.SAGAConfig{Frac: frac}, est)
				if err != nil {
					log.Fatal(err)
				}
				res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-5d %-22s %9.0f%% %9.2f%% %8d\n",
					conn, "SAGA/"+estName, frac*100, res.GarbageFrac*100, len(res.Collections))
			}
		}
		fmt.Println()
	}
	fmt.Println("paper shape: accuracy holds across connectivities (Figure 8)")
}
