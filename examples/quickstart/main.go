// Quickstart: generate an OO7 application trace, run the simulator under
// the SAIO policy (hold collector I/O at 10% of total I/O), and print what
// the controller achieved.
package main

import (
	"fmt"
	"log"

	"odbgc"
)

func main() {
	// 1. Generate the paper's workload: the OO7 Small' database driven
	//    through GenDB -> Reorg1 -> Traverse -> Reorg2.
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stats := odbgc.ComputeTraceStats(tr)
	fmt.Printf("workload: %d events, %d pointer overwrites, %.1f garbage bytes per overwrite\n",
		stats.Events, stats.Overwrites, stats.BytesPerOverwrite)

	// 2. Ask the database to spend 10% of its I/O operations on garbage
	//    collection. The collection rate adapts by itself.
	policy, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	fmt.Printf("collections:      %d\n", len(res.Collections))
	fmt.Printf("requested GC I/O: 10.00%%\n")
	fmt.Printf("achieved GC I/O:  %5.2f%% of total I/O\n", res.GCIOFrac*100)
	fmt.Printf("mean garbage:     %5.2f%% of database size\n", res.GarbageFrac*100)
	fmt.Printf("reclaimed:        %d of %d garbage bytes\n", res.TotalReclaimed, res.TotalGarbage)

	// The same run with SAGA instead: hold garbage at 10% of database size
	// using the practical FGS/HB estimator.
	est, err := odbgc.NewFGSHB(0.8)
	if err != nil {
		log.Fatal(err)
	}
	saga, err := odbgc.NewSAGA(odbgc.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := odbgc.Simulate(tr, saga, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSAGA (10%% garbage, FGS/HB): achieved %.2f%% garbage with %.2f%% GC I/O over %d collections\n",
		res2.GarbageFrac*100, res2.GCIOFrac*100, len(res2.Collections))
}
