// Customworkload: the OO7 generator is composable — beyond the paper's
// fixed four-phase application, the full OO7 operation suite (update
// traversals, queries, structural replacement) can be sequenced into
// arbitrary workloads. This example builds a "working day" mix and watches
// SAGA hold its garbage target through it.
package main

import (
	"fmt"
	"log"

	"odbgc"
)

func main() {
	gen, err := odbgc.NewOO7Generator(odbgc.SmallPrime(3), 42)
	if err != nil {
		log.Fatal(err)
	}

	// Morning: build the database, then query-heavy traffic.
	must(gen.GenDB())
	must(gen.Q1(500)) // exact-match lookups
	must(gen.Q4(200)) // document lookups
	must(gen.T6())    // sparse traversal

	// Midday: engineering changes — structural churn plus a reorganization.
	must(gen.ReplaceComposites(25))
	must(gen.Reorg1())
	must(gen.T2(odbgc.T2Variant('a'))) // verification pass with updates

	// Afternoon: analysis over the whole design.
	must(gen.Traverse())
	must(gen.Q7())
	must(gen.ScanManual())

	// Evening: more churn before the declustering reorganization.
	must(gen.ReplaceComposites(25))
	must(gen.Reorg2())

	tr := gen.Trace()
	if err := odbgc.ValidateTrace(tr); err != nil {
		log.Fatal(err)
	}
	stats := odbgc.ComputeTraceStats(tr)
	fmt.Printf("composed workload: %d events, %d overwrites, %.2f MB of garbage across %d phases\n",
		stats.Events, stats.Overwrites, float64(stats.GarbageBytes)/(1<<20), len(stats.Phases))
	fmt.Printf("phases: %v\n\n", stats.Phases)

	est, err := odbgc.NewFGSHB(0.8)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := odbgc.NewSAGA(odbgc.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAGA(10%%, FGS/HB) across the composed workload:\n")
	fmt.Printf("  collections:  %d\n", len(res.Collections))
	fmt.Printf("  mean garbage: %.2f%% (min %.2f%% / max %.2f%%)\n",
		res.GarbageFrac*100, res.GarbageFracMin*100, res.GarbageFracMax*100)
	fmt.Printf("  GC I/O share: %.2f%%\n", res.GCIOFrac*100)
	fmt.Printf("  reclaimed:    %.2f of %.2f MB\n",
		float64(res.TotalReclaimed)/(1<<20), float64(res.TotalGarbage)/(1<<20))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
