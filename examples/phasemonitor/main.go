// Phasemonitor: watch the SAGA controller adapt to the OO7 application's
// phase changes in real time. Prints a per-collection log with an ASCII
// strip chart of actual vs estimated garbage around the requested level —
// the view behind the paper's Figures 6 and 7.
package main

import (
	"fmt"
	"log"
	"strings"

	"odbgc"
)

const (
	target    = 0.10 // requested garbage fraction
	history   = 0.8  // FGS/HB history factor (the paper's practical choice)
	chartCols = 50
	chartMax  = 0.25 // garbage fraction at the right edge of the chart
)

func main() {
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: 3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	est, err := odbgc.NewFGSHB(history)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := odbgc.NewSAGA(odbgc.SAGAConfig{Frac: target}, est)
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	phaseAt := make(map[int]string)
	for _, m := range res.Phases {
		phaseAt[m.Collections] = m.Label
	}

	fmt.Printf("SAGA, FGS/HB h=%.2f, requested garbage %.0f%%\n", history, target*100)
	fmt.Printf("chart: 0%% .. %.0f%% garbage; '|' target, 'a' actual, 'e' estimated, '*' both\n\n", chartMax*100)
	for i, c := range res.Collections {
		if label, ok := phaseAt[i]; ok {
			fmt.Printf("---- phase %s ----\n", label)
		}
		fmt.Printf("#%3d ow=%6d int=%4d yield=%6dB %s\n",
			c.Index, c.Clock.Overwrites, c.Interval, c.ReclaimedBytes,
			strip(c.ActualGarbageFrac, c.EstimatedGarbageFrac))
	}

	fmt.Printf("\nmean sampled garbage: %.2f%% (requested %.0f%%) over %d collections\n",
		res.GarbageFrac*100, target*100, len(res.Collections))
}

// strip renders one row of the chart.
func strip(actual, estimated float64) string {
	cells := []byte(strings.Repeat(".", chartCols))
	put := func(frac float64, ch byte) {
		pos := int(frac / chartMax * float64(chartCols))
		if pos >= chartCols {
			pos = chartCols - 1
		}
		if pos < 0 {
			pos = 0
		}
		if cells[pos] != '.' && cells[pos] != '|' && cells[pos] != ch {
			cells[pos] = '*'
		} else {
			cells[pos] = ch
		}
	}
	put(target, '|')
	put(actual, 'a')
	put(estimated, 'e')
	return "[" + string(cells) + "]"
}
