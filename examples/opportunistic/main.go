// Opportunistic: the paper's §5 sketches two extensions — exploiting
// quiescent periods to collect beyond the user-stated limits, and coupling
// SAIO to the SAGA garbage estimators. This example runs both against the
// plain policies on a workload with idle windows between phases.
package main

import (
	"fmt"
	"log"

	"odbgc"
)

func main() {
	// A workload with quiescence: 500 idle ticks between phases.
	params := odbgc.SmallPrime(3)
	params.IdleBetweenPhases = 500
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Params: &params, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	stats := odbgc.ComputeTraceStats(tr)
	fmt.Printf("workload: %d events with %d idle ticks between phases\n\n", stats.Events, stats.IdleTicks)

	report := func(label string, res *odbgc.Result) {
		fmt.Printf("%-34s collections=%3d  gcIO=%5.2f%%  mean garbage=%5.2f%%  reclaimed=%4.1f%%\n",
			label, len(res.Collections), res.GCIOFrac*100, res.GarbageFrac*100,
			100*float64(res.TotalReclaimed)/float64(res.TotalGarbage))
	}

	// 1. Plain SAIO at 10%: idle windows go to waste.
	saio, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	res, err := odbgc.Simulate(tr, saio, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report("SAIO(10%)", res)

	// 2. The same SAIO wrapped with opportunism: during idle ticks it keeps
	//    collecting until garbage falls under a 2% floor.
	inner, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	fgs, err := odbgc.NewFGSHB(0.8)
	if err != nil {
		log.Fatal(err)
	}
	opp, err := odbgc.NewOpportunistic(inner, fgs, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	res, err = odbgc.Simulate(tr, opp, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report("SAIO(10%) + opportunism", res)

	// 3. The coupled policy: nominal 10% I/O, scaled up or down by garbage
	//    pressure against a 10% garbage goal.
	est, err := odbgc.NewFGSHB(0.8)
	if err != nil {
		log.Fatal(err)
	}
	coupled, err := odbgc.NewCoupled(odbgc.CoupledConfig{IOFrac: 0.10, GarbFrac: 0.10}, est)
	if err != nil {
		log.Fatal(err)
	}
	res, err = odbgc.Simulate(tr, coupled, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report("Coupled(io=10%, garb=10%)", res)

	fmt.Println("\nopportunism converts idle time into reclaimed garbage at zero cost to the")
	fmt.Println("application; the coupled policy spends I/O only where garbage pressure justifies it.")
}
