// Custompolicy: the rate-policy interface is a public extension point.
// This example implements a policy the paper does not ship — a duty-cycle
// controller that alternates a collection burst with a rest period measured
// in application I/O — plugs it into the simulator, and compares it with
// SAIO at the same average I/O budget.
//
// The point is the contrast in how the budget is reached: the duty cycle's
// I/O share is an accident of its hand-tuned burst/rest constants and
// shifts with the workload, while SAIO is told the share directly and
// tracks it by feedback.
package main

import (
	"fmt"
	"log"

	"odbgc"
)

// DutyCycle collects in bursts: `Burst` collections back-to-back, then
// rests for `RestIO` application I/O operations. It ignores feedback
// entirely — a fixed schedule in disguise, exactly the kind of policy §2.1
// argues against.
type DutyCycle struct {
	Burst  int    // collections per burst
	RestIO uint64 // application I/O between bursts

	inBurst int
	nextAt  uint64
	armed   bool
}

// Name implements odbgc.RatePolicy.
func (p *DutyCycle) Name() string {
	return fmt.Sprintf("duty-cycle(%d/%d)", p.Burst, p.RestIO)
}

// ShouldCollect implements odbgc.RatePolicy.
func (p *DutyCycle) ShouldCollect(now odbgc.Clock) bool {
	if !p.armed {
		p.nextAt = p.RestIO
		p.armed = true
	}
	if p.inBurst > 0 {
		return true
	}
	return now.AppIO >= p.nextAt
}

// AfterCollection implements odbgc.RatePolicy.
func (p *DutyCycle) AfterCollection(now odbgc.Clock, _ odbgc.HeapState, _ odbgc.CollectionResult) {
	if p.inBurst == 0 {
		p.inBurst = p.Burst // a burst just began with this collection
	}
	p.inBurst--
	if p.inBurst == 0 {
		p.nextAt = now.AppIO + p.RestIO
	}
}

func main() {
	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	duty := &DutyCycle{Burst: 5, RestIO: 1000}
	dres, err := odbgc.Simulate(tr, duty, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s  gcIO=%5.2f%%  garbage mean=%5.2f%% (min %.2f%% / max %.2f%%)  collections=%d\n",
		dres.PolicyName, dres.GCIOFrac*100,
		dres.GarbageFrac*100, dres.GarbageFracMin*100, dres.GarbageFracMax*100, len(dres.Collections))

	// SAIO tuned to the duty cycle's achieved I/O share: same budget,
	// feedback-controlled spending.
	saio, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: dres.GCIOFrac})
	if err != nil {
		log.Fatal(err)
	}
	sres, err := odbgc.Simulate(tr, saio, odbgc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s  gcIO=%5.2f%%  garbage mean=%5.2f%% (min %.2f%% / max %.2f%%)  collections=%d\n",
		sres.PolicyName, sres.GCIOFrac*100,
		sres.GarbageFrac*100, sres.GarbageFracMin*100, sres.GarbageFracMax*100, len(sres.Collections))

	fmt.Printf("\nthe duty cycle reached %.2f%% GC I/O only because its burst/rest constants happen\n", dres.GCIOFrac*100)
	fmt.Printf("to suit this workload; SAIO was told %.2f%% and achieved %.2f%% by feedback alone.\n",
		dres.GCIOFrac*100, sres.GCIOFrac*100)
	fmt.Println("change the workload and the duty cycle drifts while SAIO re-converges (§2.1).")
}
