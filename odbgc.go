// Package odbgc is a trace-driven simulation library for studying garbage
// collection rate control in object databases. It reproduces the system of
// Cook, Klauser, Zorn, and Wolf, "Semi-automatic, Self-adaptive Control of
// Garbage Collection Rates in Object Databases" (SIGMOD 1996): a partitioned
// copying collector over a paged object store, driven by OO7 benchmark
// application traces, with the paper's two adaptive collection-rate
// policies:
//
//   - SAIO holds garbage-collector I/O at a requested percentage of total
//     I/O operations;
//   - SAGA holds database garbage at a requested percentage of database
//     size, using a pluggable garbage estimator (Oracle, CGS/CB, FGS/HB).
//
// # Quick start
//
//	tr, err := odbgc.GenerateOO7Trace(odbgc.OO7Options{Connectivity: 3, Seed: 1})
//	policy, err := odbgc.NewSAIO(odbgc.SAIOConfig{Frac: 0.10})
//	res, err := odbgc.Simulate(tr, policy, odbgc.SimOptions{})
//	fmt.Printf("collector I/O share: %.2f%%\n", res.GCIOFrac*100)
//
// The library is layered: this package is a facade over internal packages
// (objstore, storage, gc, core, oo7, sim, experiments) and re-exports the
// types needed to configure runs, implement custom rate policies, and
// regenerate every table and figure in the paper's evaluation.
package odbgc

import (
	"fmt"
	"io"

	"odbgc/internal/core"
	"odbgc/internal/experiments"
	"odbgc/internal/gc"
	"odbgc/internal/oo7"
	"odbgc/internal/sim"
	"odbgc/internal/storage"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

// Re-exported core types. RatePolicy is the extension point: implement it
// to plug a custom collection-rate policy into the simulator (see
// examples/custompolicy).
type (
	// Clock is the policy-visible time snapshot (application I/O,
	// collector I/O, pointer overwrites).
	Clock = core.Clock
	// RatePolicy decides when collections happen.
	RatePolicy = core.RatePolicy
	// HeapState is the database view a RatePolicy or Estimator reads.
	HeapState = core.HeapState
	// Estimator estimates current database garbage for the SAGA policy.
	Estimator = core.Estimator
	// SAIOConfig parameterizes the SAIO policy.
	SAIOConfig = core.SAIOConfig
	// SAGAConfig parameterizes the SAGA policy.
	SAGAConfig = core.SAGAConfig
	// SAIO is the semi-automatic I/O-percentage policy (§2.2).
	SAIO = core.SAIO
	// SAGA is the semi-automatic garbage-percentage policy (§2.3).
	SAGA = core.SAGA
	// FixedRate collects every N pointer overwrites (Figure 1's strawman).
	FixedRate = core.FixedRate
	// Coupled is the §5 future-work policy: SAIO scheduling scaled by the
	// SAGA estimator's garbage pressure.
	Coupled = core.Coupled
	// CoupledConfig parameterizes the Coupled policy.
	CoupledConfig = core.CoupledConfig
	// Opportunistic wraps any policy with §5's quiescence opportunism.
	Opportunistic = core.Opportunistic
	// PIController is a textbook PI baseline for SAGA.
	PIController = core.PIController
	// PIConfig parameterizes the PI controller.
	PIConfig = core.PIConfig

	// Trace is an application event stream.
	Trace = trace.Trace
	// Event is a single trace record.
	Event = trace.Event
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats

	// OO7Params are the benchmark database parameters (Table 1).
	OO7Params = oo7.Params
	// OO7Info summarizes a generated database's structure.
	OO7Info = oo7.Info
	// ChurnParams describe the non-OO7 directory/file churn workload.
	ChurnParams = workload.ChurnParams
	// OO7Generator builds OO7 traces phase by phase and exposes the wider
	// OO7 operation suite (T2/T6/Q1/Q4/Q7/ScanManual/ReplaceComposites)
	// for composing custom workloads.
	OO7Generator = oo7.Generator
	// T2Variant selects the update pattern of an OO7 T2 traversal.
	T2Variant = oo7.T2Variant

	// StorageConfig sets page/partition/buffer geometry.
	StorageConfig = storage.Config
	// IOStats counts reads and writes by attribution class.
	IOStats = storage.IOStats
	// SelectionPolicy picks the partition to collect.
	SelectionPolicy = gc.SelectionPolicy
	// Heap couples the object store with placement and collector state.
	Heap = gc.Heap
	// CollectionResult describes one collection.
	CollectionResult = gc.CollectionResult

	// Result summarizes a simulation run.
	Result = sim.Result
	// CollectionRecord is one collection in a Result's time series.
	CollectionRecord = sim.CollectionRecord
	// MultiResult aggregates several seeded runs.
	MultiResult = sim.MultiResult
	// Report is one regenerated paper table or figure.
	Report = experiments.Report
	// ExperimentOptions controls experiment scale.
	ExperimentOptions = experiments.Options
)

// Policy constructors re-exported from the core package.
var (
	// NewSAIO returns a SAIO policy.
	NewSAIO = core.NewSAIO
	// NewSAGA returns a SAGA policy with the given estimator.
	NewSAGA = core.NewSAGA
	// NewFixedRate returns a fixed-rate policy.
	NewFixedRate = core.NewFixedRate
	// NewEstimator builds an estimator by name: "oracle", "cgs-cb",
	// "fgs-hb".
	NewEstimator = core.NewEstimator
	// NewCoupled returns the SAIO+SAGA coupled policy.
	NewCoupled = core.NewCoupled
	// NewOpportunistic wraps a policy with idle-time collection down to a
	// garbage floor.
	NewOpportunistic = core.NewOpportunistic
	// NewPIController returns the PI garbage-level controller.
	NewPIController = core.NewPIController
	// NewFGSWindow returns the sliding-window FGS estimator.
	NewFGSWindow = core.NewFGSWindow
	// NewFGSPerPartition returns the per-partition FGS estimator.
	NewFGSPerPartition = core.NewFGSPerPartition
	// NewFGSHB returns an FGS/HB estimator with the given history factor.
	NewFGSHB = core.NewFGSHB
	// NewCGSCB returns a CGS/CB estimator.
	NewCGSCB = core.NewCGSCB
	// NewSelectionPolicy builds a partition-selection policy by name:
	// "updated-pointer", "random", "round-robin", "oracle-max-garbage".
	NewSelectionPolicy = gc.NewSelectionPolicy
	// NewOO7Generator returns a phase-by-phase OO7 trace generator.
	NewOO7Generator = oo7.NewGenerator
	// SmallPrime returns the paper's Small' OO7 parameters for a
	// connectivity of 3, 6 or 9.
	SmallPrime = oo7.SmallPrime
	// Small returns the original OO7 Small parameters.
	Small = oo7.Small
	// DefaultStorage returns the paper's geometry: 8 KB pages, 12-page
	// partitions, buffer of one partition.
	DefaultStorage = storage.DefaultConfig
)

// OracleEstimator knows the exact garbage content (simulation-only).
type OracleEstimator = core.OracleEstimator

// NeverCollect disables collection (the no-GC baseline).
type NeverCollect = core.NeverCollect

// OO7Options selects an OO7 workload variant.
type OO7Options struct {
	// Connectivity is NumConnPerAtomic: 3 (default), 6, or 9.
	Connectivity int
	// Seed drives the generator's randomness; runs differing only in seed
	// reproduce the paper's multi-run methodology.
	Seed int64
	// Params overrides the database parameters entirely when non-nil.
	Params *OO7Params
}

// GenerateOO7Trace builds a full four-phase OO7 application trace
// (GenDB, Reorg1, Traverse, Reorg2).
func GenerateOO7Trace(opts OO7Options) (*Trace, error) {
	p := oo7.SmallPrime(3)
	if opts.Connectivity != 0 {
		p = oo7.SmallPrime(opts.Connectivity)
	}
	if opts.Params != nil {
		p = *opts.Params
	}
	return oo7.FullTrace(p, opts.Seed)
}

// SimOptions configure a simulation run.
type SimOptions struct {
	// Storage geometry; the zero value uses the paper's defaults.
	Storage StorageConfig
	// Selection picks partitions to collect; nil means UPDATEDPOINTER.
	// Used by Simulate only (selection policies are stateful, so
	// SimulateMany builds one per run via MakeSelection).
	Selection SelectionPolicy
	// MakeSelection builds a fresh selection policy per run for
	// SimulateMany; nil means UPDATEDPOINTER for every run.
	MakeSelection func(run int) (SelectionPolicy, error)
	// PreambleCollections excludes the cold start from summary means
	// (default 10; negative disables).
	PreambleCollections int
}

// Simulate replays a trace under the given rate policy and returns the
// run's measurements.
func Simulate(tr *Trace, policy RatePolicy, opts SimOptions) (*Result, error) {
	if tr == nil {
		return nil, fmt.Errorf("odbgc: nil trace")
	}
	s, err := sim.New(sim.Config{
		Storage:             opts.Storage,
		Policy:              policy,
		Selection:           opts.Selection,
		PreambleCollections: opts.PreambleCollections,
	})
	if err != nil {
		return nil, err
	}
	return s.Run(tr)
}

// SimulateStream replays a binary trace stream (as written by WriteTrace or
// cmd/oo7gen) under the given policy without materializing it in memory.
func SimulateStream(r io.Reader, policy RatePolicy, opts SimOptions) (*Result, error) {
	rd, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		Storage:             opts.Storage,
		Policy:              policy,
		Selection:           opts.Selection,
		PreambleCollections: opts.PreambleCollections,
	})
	if err != nil {
		return nil, err
	}
	return s.RunStream(rd)
}

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteAll(w, tr) }

// ReadTrace decodes a binary trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadAll(r) }

// SimulateMany replays one trace per seed with fresh policies built by
// makePolicy and aggregates results (mean with min/max bars), the paper's
// multi-run methodology.
func SimulateMany(traces []*Trace, makePolicy func(run int) (RatePolicy, error), opts SimOptions) (*MultiResult, error) {
	return sim.RunMany(sim.RunnerConfig{
		Traces:              traces,
		MakePolicy:          makePolicy,
		MakeSelection:       opts.MakeSelection,
		Storage:             opts.Storage,
		PreambleCollections: opts.PreambleCollections,
	})
}

// GenerateTraces builds n OO7 traces with consecutive seeds.
func GenerateTraces(p OO7Params, baseSeed int64, n int) ([]*Trace, error) {
	return sim.GenerateTraces(p, baseSeed, n)
}

// DefaultChurn returns the default parameters of the non-OO7 churn
// workload (see GenerateChurnTrace).
func DefaultChurn() ChurnParams { return workload.DefaultChurn() }

// GenerateChurnTrace builds the five-phase directory/file churn workload —
// a contrasting application for probing the policies outside OO7 (leaf
// garbage, skewed updates, bursty phases).
func GenerateChurnTrace(p ChurnParams, seed int64) (*Trace, error) {
	return workload.Churn(p, seed)
}

// QueueParams describe the sliding-window (FIFO log) workload.
type QueueParams = workload.QueueParams

// DefaultQueue returns the default sliding-window workload parameters.
func DefaultQueue() QueueParams { return workload.DefaultQueue() }

// GenerateQueueTrace builds the sliding-window workload: garbage
// concentrates in the oldest partitions while all overwrites hit one
// anchor object — a stress case for overwrite-based partition selection.
func GenerateQueueTrace(p QueueParams, seed int64) (*Trace, error) {
	return workload.Queue(p, seed)
}

// ValidateTrace replays a trace against a scratch store, checking
// referential integrity and oracle-annotation consistency.
func ValidateTrace(tr *Trace) error { return trace.Validate(tr) }

// ComputeTraceStats summarizes a trace.
func ComputeTraceStats(tr *Trace) TraceStats { return trace.ComputeStats(tr) }

// ExperimentNames lists the paper experiments in order.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one paper table or figure by name ("table1",
// "fig1", "fig2", "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8").
func RunExperiment(name string, opts ExperimentOptions) (*Report, error) {
	return experiments.NewRunner(opts).Run(name)
}

// RunAllExperiments regenerates every paper table and figure.
func RunAllExperiments(opts ExperimentOptions) ([]*Report, error) {
	return experiments.NewRunner(opts).All()
}
