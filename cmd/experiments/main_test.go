package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/obs"
)

func TestExperimentsTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "table1", "-runs", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "NumAtomicPerComp") || !strings.Contains(out, "took") {
		t.Errorf("table1 output incomplete:\n%s", out)
	}
}

func TestExperimentsCSVAndPlot(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig2,fig7b", "-runs", "1", "-plot", "-csvdir", dir}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// fig7b has series: CSV file plus a chart per series.
	csv, err := os.ReadFile(filepath.Join(dir, "fig7b.csv"))
	if err != nil {
		t.Fatalf("fig7b.csv missing: %v", err)
	}
	if !strings.HasPrefix(string(csv), "collection,") {
		t.Errorf("csv header wrong: %q", string(csv[:40]))
	}
	if !strings.Contains(stdout.String(), "fig7b: interval_overwrites") {
		t.Errorf("plot missing from output")
	}
	// fig2 has no series: no CSV file expected.
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err == nil {
		t.Error("fig2.csv written despite having no series")
	}
}

func TestExperimentsUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExperimentsFlagValidation checks that out-of-range counts are rejected
// with an error naming the flag.
func TestExperimentsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"runs zero", []string{"-runs", "0"}, "-runs"},
		{"runs negative", []string{"-runs", "-2"}, "-runs"},
		{"conn zero", []string{"-conn", "0"}, "-conn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("args %v: error %v, want mention of %q", c.args, err, c.want)
			}
		})
	}
}

// TestExperimentsEventsAndManifest runs a small sweep with -events-dir and
// -manifest-dir and checks that per-run event logs validate and the manifest
// digests the CSV artifact.
func TestExperimentsEventsAndManifest(t *testing.T) {
	evDir := t.TempDir()
	manDir := t.TempDir()
	csvDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "fig4", "-runs", "1",
		"-events-dir", evDir, "-manifest-dir", manDir, "-csvdir", csvDir}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}

	logs, err := filepath.Glob(filepath.Join(evDir, "fig4-batch*", "run-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatalf("no event logs under %s", evDir)
	}
	f, err := os.Open(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	envs, err := obs.ReadAll(f)
	if err != nil {
		t.Fatalf("%s does not validate: %v", logs[0], err)
	}
	if len(envs) == 0 {
		t.Fatalf("%s is empty", logs[0])
	}

	m, err := obs.ReadManifest(filepath.Join(manDir, "fig4.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "experiments" || m.Seed != 1 {
		t.Errorf("manifest provenance wrong: %+v", m)
	}
	if len(m.Artifacts) != 1 || m.Artifacts[0].Path != "fig4.csv" {
		t.Errorf("manifest artifacts wrong: %+v", m.Artifacts)
	}
	var gotRuns bool
	for _, kv := range m.Config {
		if kv.Key == "runs" && kv.Value == "1" {
			gotRuns = true
		}
	}
	if !gotRuns {
		t.Errorf("manifest config does not record -runs: %+v", m.Config)
	}
}
