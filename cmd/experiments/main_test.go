package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExperimentsTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "table1", "-runs", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "NumAtomicPerComp") || !strings.Contains(out, "took") {
		t.Errorf("table1 output incomplete:\n%s", out)
	}
}

func TestExperimentsCSVAndPlot(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig2,fig7b", "-runs", "1", "-plot", "-csvdir", dir}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// fig7b has series: CSV file plus a chart per series.
	csv, err := os.ReadFile(filepath.Join(dir, "fig7b.csv"))
	if err != nil {
		t.Fatalf("fig7b.csv missing: %v", err)
	}
	if !strings.HasPrefix(string(csv), "collection,") {
		t.Errorf("csv header wrong: %q", string(csv[:40]))
	}
	if !strings.Contains(stdout.String(), "fig7b: interval_overwrites") {
		t.Errorf("plot missing from output")
	}
	// fig2 has no series: no CSV file expected.
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err == nil {
		t.Error("fig2.csv written despite having no series")
	}
}

func TestExperimentsUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
}
