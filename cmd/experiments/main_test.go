package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"odbgc/internal/obs"
	"odbgc/internal/simerr"
)

func TestExperimentsTable1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "table1", "-runs", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "NumAtomicPerComp") || !strings.Contains(out, "took") {
		t.Errorf("table1 output incomplete:\n%s", out)
	}
}

func TestExperimentsCSVAndPlot(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig2,fig7b", "-runs", "1", "-plot", "-csvdir", dir}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// fig7b has series: CSV file plus a chart per series.
	csv, err := os.ReadFile(filepath.Join(dir, "fig7b.csv"))
	if err != nil {
		t.Fatalf("fig7b.csv missing: %v", err)
	}
	if !strings.HasPrefix(string(csv), "collection,") {
		t.Errorf("csv header wrong: %q", string(csv[:40]))
	}
	if !strings.Contains(stdout.String(), "fig7b: interval_overwrites") {
		t.Errorf("plot missing from output")
	}
	// fig2 has no series: no CSV file expected.
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err == nil {
		t.Error("fig2.csv written despite having no series")
	}
}

func TestExperimentsUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExperimentsFlagValidation checks that out-of-range counts are rejected
// with an error naming the flag.
func TestExperimentsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"runs zero", []string{"-runs", "0"}, "-runs"},
		{"runs negative", []string{"-runs", "-2"}, "-runs"},
		{"conn zero", []string{"-conn", "0"}, "-conn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("args %v: error %v, want mention of %q", c.args, err, c.want)
			}
		})
	}
}

// TestExperimentsEventsAndManifest runs a small sweep with -events-dir and
// -manifest-dir and checks that per-run event logs validate and the manifest
// digests the CSV artifact.
func TestExperimentsEventsAndManifest(t *testing.T) {
	evDir := t.TempDir()
	manDir := t.TempDir()
	csvDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "fig4", "-runs", "1",
		"-events-dir", evDir, "-manifest-dir", manDir, "-csvdir", csvDir}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}

	logs, err := filepath.Glob(filepath.Join(evDir, "fig4-batch*", "run-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatalf("no event logs under %s", evDir)
	}
	f, err := os.Open(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	envs, err := obs.ReadAll(f)
	if err != nil {
		t.Fatalf("%s does not validate: %v", logs[0], err)
	}
	if len(envs) == 0 {
		t.Fatalf("%s is empty", logs[0])
	}

	m, err := obs.ReadManifest(filepath.Join(manDir, "fig4.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "experiments" || m.Seed != 1 {
		t.Errorf("manifest provenance wrong: %+v", m)
	}
	if len(m.Artifacts) != 1 || m.Artifacts[0].Path != "fig4.csv" {
		t.Errorf("manifest artifacts wrong: %+v", m.Artifacts)
	}
	var gotRuns bool
	for _, kv := range m.Config {
		if kv.Key == "runs" && kv.Value == "1" {
			gotRuns = true
		}
	}
	if !gotRuns {
		t.Errorf("manifest config does not record -runs: %+v", m.Config)
	}
}

// TestExperimentsInterruptResume is the end-to-end resilience check: a sweep
// is drained as soon as its first per-run checkpoint lands, exits with a
// canceled-classified error and a resume hint, and rerunning with the same
// -checkpoint-dir produces a final CSV and artifact digest byte-identical to
// an uninterrupted sweep.
func TestExperimentsInterruptResume(t *testing.T) {
	refCSV, refMan := t.TempDir(), t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig4", "-runs", "1",
		"-csvdir", refCSV, "-manifest-dir", refMan}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(filepath.Join(refCSV, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	refMf, err := obs.ReadManifest(filepath.Join(refMan, "fig4.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: a watcher polls the checkpoint directory and pulls
	// the drain as soon as the first completed run is cached. fig4 runs eight
	// sequential batches, so plenty of work remains past that point.
	ckpt, gotCSV, gotMan := t.TempDir(), t.TempDir(), t.TempDir()
	args := []string{"-run", "fig4", "-runs", "1",
		"-checkpoint-dir", ckpt, "-csvdir", gotCSV, "-manifest-dir", gotMan}
	sd := obs.NewShutdown(context.Background())
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			if m, _ := filepath.Glob(filepath.Join(ckpt, "*", "run-*.gob")); len(m) > 0 {
				sd.Interrupt()
				return
			}
			select {
			case <-stopWatch:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	var istdout, istderr bytes.Buffer
	ierr := runWithShutdown(sd, args, &istdout, &istderr)
	close(stopWatch)
	<-watchDone
	if ierr == nil {
		t.Fatal("interrupted sweep reported success")
	}
	if simerr.Classify(ierr) != simerr.ClassCanceled {
		t.Fatalf("interrupted sweep error = %v (class %s), want canceled", ierr, simerr.Classify(ierr))
	}
	if !strings.Contains(ierr.Error(), ckpt) {
		t.Errorf("interrupt error does not name the checkpoint dir for resume: %v", ierr)
	}
	saved, err := filepath.Glob(filepath.Join(ckpt, "*", "run-*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) == 0 {
		t.Fatal("drain flushed no per-run checkpoints")
	}

	// Resume with the same checkpoint directory: the sweep completes and its
	// outputs match the uninterrupted reference byte for byte.
	var rstdout, rstderr bytes.Buffer
	if err := run(args, &rstdout, &rstderr); err != nil {
		t.Fatalf("resume: %v", err)
	}
	gotBytes, err := os.ReadFile(filepath.Join(gotCSV, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantCSV) {
		t.Errorf("resumed CSV differs from uninterrupted reference:\ngot:\n%s\nwant:\n%s", gotBytes, wantCSV)
	}
	gotMf, err := obs.ReadManifest(filepath.Join(gotMan, "fig4.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMf.Artifacts) != 1 || len(refMf.Artifacts) != 1 {
		t.Fatalf("artifacts: got %+v, ref %+v", gotMf.Artifacts, refMf.Artifacts)
	}
	if gotMf.Artifacts[0].SHA256 != refMf.Artifacts[0].SHA256 {
		t.Errorf("resumed artifact digest %s != reference %s",
			gotMf.Artifacts[0].SHA256, refMf.Artifacts[0].SHA256)
	}
}
