// Command experiments regenerates the paper's tables and figures: the same
// rows and series, produced by the reproduction's simulator. Text tables go
// to stdout; -plot also renders ASCII charts; -csvdir writes each figure's
// series as CSV files.
//
// Usage:
//
//	experiments                      # run everything with paper methodology
//	experiments -run fig4,fig5       # a subset
//	experiments -runs 3              # fewer seeded runs per data point
//	experiments -plot                # also draw each figure
//	experiments -csvdir out/         # also write CSV series
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"odbgc/internal/experiments"
	"odbgc/internal/fault"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/simerr"
)

func main() {
	// Two-stage graceful shutdown: the first SIGINT/SIGTERM stops scheduling
	// new runs and lets in-flight ones finish and checkpoint; the second
	// cancels everything hard.
	sd := obs.NewShutdown(context.Background())
	stop := sd.Notify()
	defer stop()
	if err := runWithShutdown(sd, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the CLI with no signals wired; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	return runWithShutdown(obs.NewShutdown(context.Background()), args, stdout, stderr)
}

func runWithShutdown(sd *obs.Shutdown, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList = fs.String("run", "", "comma-separated experiments (default: all); have: "+strings.Join(experiments.Names(), ","))
		runs    = fs.Int("runs", 10, "seeded runs per data point")
		conn    = fs.Int("conn", 3, "connectivity for the main experiments")
		seed    = fs.Int64("seed", 1, "base seed")
		csvdir  = fs.String("csvdir", "", "directory to write per-figure CSV series into")
		plots   = fs.Bool("plot", false, "render each figure as an ASCII chart")
		faultPr = fs.String("fault-profile", "off", "run every batch under a fault-injection profile: "+strings.Join(fault.ProfileNames(), ", "))
		faultSd = fs.Int64("fault-seed", 1, "base seed for fault schedules (run i of a batch uses seed+i)")
		ckptDir = fs.String("checkpoint-dir", "", "cache completed per-run results here so interrupted sweeps resume; delete after changing parameters")
		evDir   = fs.String("events-dir", "", "write per-run JSONL event logs under this directory (see cmd/obsdump)")
		manDir  = fs.String("manifest-dir", "", "write a provenance manifest per experiment into this directory")
		par     = fs.Int("parallel", 0, "max concurrent runs per batch (0 = GOMAXPROCS)")
		runTmo  = fs.Duration("run-timeout", 0, "abort any single run exceeding this wall-clock duration, classified as a timeout (0 = no deadline)")
		retries = fs.Int("retries", 0, "extra attempts for a run failing with a transient fault (0 = no retries)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be >= 1 (got %d)", *runs)
	}
	if *conn < 1 {
		return fmt.Errorf("-conn must be >= 1 (got %d)", *conn)
	}
	if *par < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d)", *par)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", *retries)
	}

	profile, err := fault.LookupProfile(*faultPr)
	if err != nil {
		return err
	}

	names := experiments.Names()
	if *runList != "" {
		names = nil
		for _, n := range strings.Split(*runList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	runner := experiments.NewRunner(experiments.Options{
		Connectivity:  *conn,
		Runs:          *runs,
		SeedBase:      *seed,
		FaultProfile:  profile,
		FaultSeed:     *faultSd,
		CheckpointDir: *ckptDir,
		EventsDir:     *evDir,
		Parallel:      *par,
		RunTimeout:    *runTmo,
		MaxAttempts:   *retries + 1,
		Drain:         sd.Draining(),
	})
	for _, name := range names {
		select {
		case <-sd.Draining():
			return interruptHint(name, *ckptDir)
		default:
		}
		start := time.Now()
		rep, err := runner.RunContext(sd.Context(), name)
		if err != nil {
			if simerr.Classify(err) == simerr.ClassCanceled {
				return interruptHint(name, *ckptDir)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout, rep)
		if *plots {
			if chart := rep.Plot(); chart != "" {
				fmt.Fprintln(stdout, chart)
			}
		}
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))

		var csvPath string
		if *csvdir != "" && len(rep.Series) > 0 {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				return err
			}
			csvPath = filepath.Join(*csvdir, rep.ID+".csv")
			csv := metrics.CSV(rep.XName, rep.Series...)
			if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", csvPath)
		}

		if *manDir != "" {
			if err := os.MkdirAll(*manDir, 0o755); err != nil {
				return err
			}
			m := &obs.Manifest{
				Tool:   "experiments",
				Config: flagKVs(fs),
				Seed:   *seed,
			}
			if profile.Storage() || profile.Estimator() || profile.Trace() {
				m.FaultSeed = *faultSd
			}
			if csvPath != "" {
				if err := m.AddArtifact(csvPath); err != nil {
					return err
				}
			}
			path := filepath.Join(*manDir, name+".manifest.json")
			if err := m.Write(path); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	return nil
}

// interruptHint is the error an interrupted sweep exits with: completed runs
// are checkpointed, and the hint says how to pick the sweep back up.
func interruptHint(name, ckptDir string) error {
	if ckptDir == "" {
		return simerr.Canceledf(
			"interrupted during %s; rerun with -checkpoint-dir DIR to make interrupts resumable", name)
	}
	return simerr.Canceledf(
		"interrupted during %s; completed runs are cached — rerun with the same -checkpoint-dir %s to resume", name, ckptDir)
}

// flagKVs snapshots every flag's effective value for the provenance manifest.
func flagKVs(fs *flag.FlagSet) []obs.KV {
	m := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		m[f.Name] = f.Value.String()
	})
	return obs.ConfigKVs(m)
}
