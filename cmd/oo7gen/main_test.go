package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/trace"
)

func TestRunGeneratesValidBinaryTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.odbt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, "-validate", "-seed", "7"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !strings.Contains(stderr.String(), "garbage objects") {
		t.Errorf("summary missing: %q", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, "-json", "-q", "-phases", "GenDB"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if len(s.Phases) != 1 || s.Phases[0] != "GenDB" {
		t.Errorf("phases = %v", s.Phases)
	}
	if stderr.Len() != 0 {
		t.Errorf("-q still printed: %q", stderr.String())
	}
}

func TestRunChurnWorkload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.odbt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, "-workload", "churn", "-validate", "-q"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("churn trace not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run([]string{"-o", "-", "-phases", "Bogus", "-q"}, &stdout, &stderr); err == nil {
		t.Error("unknown phase accepted")
	}
	if err := run([]string{"-o", "-", "-workload", "nope", "-q"}, &stdout, &stderr); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "x"), "-conn", "25", "-q"}, &stdout, &stderr); err == nil {
		t.Error("invalid connectivity accepted")
	}
}

func TestRunIdleFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "i.odbt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, "-idle", "50", "-q"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if s := trace.ComputeStats(tr); s.IdleTicks != 150 { // 3 boundaries x 50
		t.Errorf("idle ticks = %d, want 150", s.IdleTicks)
	}
}
