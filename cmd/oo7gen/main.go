// Command oo7gen generates OO7 benchmark application traces: the four-phase
// workload (GenDB, Reorg1, Traverse, Reorg2) the paper evaluates on, or the
// non-OO7 churn workload with -workload churn.
//
// Usage:
//
//	oo7gen -o trace.odbt [-conn 3] [-seed 1] [-phases GenDB,Reorg1,Traverse,Reorg2]
//	       [-json] [-validate] [-small] [-workload oo7|churn]
//
// The binary format is compact; -json writes JSON lines for inspection and
// interchange. -validate replays the trace and cross-checks the oracle
// garbage annotations against true reachability before writing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"odbgc/internal/oo7"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oo7gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("oo7gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "output file (required; use - for stdout)")
		conn     = fs.Int("conn", 3, "NumConnPerAtomic: connectivity between atomic parts (3, 6 or 9)")
		seed     = fs.Int64("seed", 1, "random seed")
		phases   = fs.String("phases", strings.Join(oo7.Phases, ","), "comma-separated OO7 phases to generate, in order")
		asJSON   = fs.Bool("json", false, "write JSON lines instead of the binary format")
		validate = fs.Bool("validate", false, "validate the trace before writing")
		small    = fs.Bool("small", false, "use the original OO7 Small parameters (500 composites, 7 levels) instead of Small'")
		docProb  = fs.Float64("docreplace", -1, "probability a reorg replaces a composite's document (-1 keeps the default)")
		idle     = fs.Int("idle", 0, "quiescence ticks between phases (for opportunistic policies)")
		kind     = fs.String("workload", "oo7", "workload family: oo7 or churn")
		quiet    = fs.Bool("q", false, "suppress the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-o is required")
	}

	var tr *trace.Trace
	switch *kind {
	case "oo7":
		var err error
		tr, err = generateOO7(*conn, *seed, *phases, *small, *docProb, *idle)
		if err != nil {
			return err
		}
	case "churn":
		var err error
		tr, err = workload.Churn(workload.DefaultChurn(), *seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown workload %q (have oo7, churn)", *kind)
	}

	if *validate {
		if err := trace.Validate(tr); err != nil {
			return fmt.Errorf("trace failed validation: %w", err)
		}
	}

	// A close failure on the output file can mean unflushed trace bytes, so
	// it fails the run rather than being deferred away.
	var w io.Writer = stdout
	closeOut := func() error { return nil }
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		closeOut = f.Close
		w = f
	}
	var err error
	if *asJSON {
		err = trace.WriteJSON(w, tr)
	} else {
		err = trace.WriteAll(w, tr)
	}
	if err != nil {
		_ = closeOut()
		return err
	}
	if err := closeOut(); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}

	if !*quiet {
		s := trace.ComputeStats(tr)
		fmt.Fprintf(stderr,
			"oo7gen: %d events (%d creates, %d accesses, %d overwrites, %d init stores)\n",
			s.Events, s.Creates, s.Accesses, s.Overwrites, s.InitStores)
		fmt.Fprintf(stderr, "oo7gen: %d garbage objects, %d bytes (%.1f B/overwrite), phases %v\n",
			s.GarbageObjects, s.GarbageBytes, s.BytesPerOverwrite, s.Phases)
	}
	return nil
}

func generateOO7(conn int, seed int64, phases string, small bool, docProb float64, idle int) (*trace.Trace, error) {
	params := oo7.SmallPrime(conn)
	if small {
		params = oo7.Small(conn)
	}
	if docProb >= 0 {
		params.DocReplaceProb = docProb
	}
	params.IdleBetweenPhases = idle

	g, err := oo7.NewGenerator(params, seed)
	if err != nil {
		return nil, err
	}
	for _, ph := range strings.Split(phases, ",") {
		switch strings.TrimSpace(ph) {
		case oo7.PhaseGenDB:
			err = g.GenDB()
		case oo7.PhaseReorg1:
			err = g.Reorg1()
		case oo7.PhaseTraverse:
			err = g.Traverse()
		case oo7.PhaseReorg2:
			err = g.Reorg2()
		case "":
			continue
		default:
			return nil, fmt.Errorf("unknown phase %q (have %v)", ph, oo7.Phases)
		}
		if err != nil {
			return nil, err
		}
	}
	return g.Trace(), nil
}
