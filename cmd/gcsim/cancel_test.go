package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/obs"
	"odbgc/internal/simerr"
)

// TestGcsimRunTimeout checks that -run-timeout aborts a run with a
// timeout-classified error: a 1ns deadline has expired before the first
// event, so the failure is deterministic.
func TestGcsimRunTimeout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run-timeout", "1ns"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("run with an expired deadline reported success")
	}
	if !errors.Is(err, simerr.ErrTimeout) {
		t.Errorf("error %v is not simerr.ErrTimeout", err)
	}
	if simerr.Classify(err) != simerr.ClassTimeout {
		t.Errorf("error %v classified %s, want timeout", err, simerr.Classify(err))
	}
}

// TestGcsimInterruptCheckpointResume drives the drain path directly: with the
// shutdown already in the draining stage, the run checkpoints immediately and
// exits cleanly, and resuming from that checkpoint reproduces the
// uninterrupted run's summary exactly.
func TestGcsimInterruptCheckpointResume(t *testing.T) {
	var ref bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.15"}, &ref, &ref); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	sd := obs.NewShutdown(context.Background())
	sd.Interrupt()
	var stdout, stderr bytes.Buffer
	err := runWithShutdown(sd, []string{"-policy", "saio", "-frac", "0.15", "-checkpoint", ckpt}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("interrupted run with -checkpoint should drain cleanly: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "interrupt: draining at event") {
		t.Errorf("drain message missing:\n%s", out)
	}
	if !strings.Contains(out, "resume with -resume") {
		t.Errorf("resume hint missing:\n%s", out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	var resumed bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.15", "-resume", ckpt}, &resumed, &resumed); err != nil {
		t.Fatalf("resume: %v", err)
	}
	// The resumed output is the reference summary plus a leading
	// "resumed at event N" line.
	got := resumed.String()
	if i := strings.IndexByte(got, '\n'); i < 0 || !strings.HasPrefix(got, "resumed at event") {
		t.Fatalf("resume banner missing:\n%s", got)
	} else {
		got = got[i+1:]
	}
	if got != ref.String() {
		t.Errorf("resumed summary differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, ref.String())
	}
}

// TestGcsimInterruptWithoutCheckpoint checks that an interrupted run without
// -checkpoint fails with a canceled-classified error telling the user how to
// make interrupts resumable.
func TestGcsimInterruptWithoutCheckpoint(t *testing.T) {
	sd := obs.NewShutdown(context.Background())
	sd.Interrupt()
	var stdout, stderr bytes.Buffer
	err := runWithShutdown(sd, nil, &stdout, &stderr)
	if err == nil {
		t.Fatal("interrupted run without -checkpoint reported success")
	}
	if simerr.Classify(err) != simerr.ClassCanceled {
		t.Errorf("error %v classified %s, want canceled", err, simerr.Classify(err))
	}
	if !strings.Contains(err.Error(), "-checkpoint") {
		t.Errorf("error does not mention -checkpoint: %v", err)
	}
}
