package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

// gcsim with no trace argument generates its own small run in memory, so
// the tests drive the full pipeline through the CLI surface.

func TestGcsimSAIOSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.15"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"policy:            saio(15%)", "collections:", "gc I/O share:", "phase Reorg2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestGcsimPolicyVariants(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "saga", "-frac", "0.10", "-estimator", "oracle"},
		{"-policy", "saga", "-estimator", "fgs-pp", "-sloperef", "100"},
		{"-policy", "pi", "-frac", "0.10"},
		{"-policy", "coupled", "-frac", "0.10"},
		{"-policy", "fixed", "-interval", "500"},
		{"-policy", "never"},
		{"-policy", "fixed", "-interval", "400", "-selection", "round-robin", "-fixups"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestGcsimPerCollectionLog(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "400", "-log", "-logevery", "10"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "#   1 ") {
		t.Errorf("per-collection log missing:\n%s", stdout.String())
	}
}

// TestGcsimStreamsTraceFile exercises the streaming path: a trace file on
// disk is replayed without loading it whole.
func TestGcsimStreamsTraceFile(t *testing.T) {
	p := oo7.SmallPrime(3)
	p.NumCompPerModule = 15
	p.NumAssmLevels = 3
	tr, err := oo7.FullTrace(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.odbt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAll(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.20", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "collections:") {
		t.Errorf("summary missing:\n%s", stdout.String())
	}
}

func TestGcsimCompare(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compare", "saio:0.1,saga:0.1:oracle,fixed:400,never"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"saio(10%)", "saga(10%,oracle)", "fixed(400)", "never", "mean garbage %"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare table missing %q:\n%s", want, out)
		}
	}
}

func TestGcsimCompareSpecErrors(t *testing.T) {
	for _, spec := range []string{"wat", "saio:x", "fixed:x", "saga:0.1:bogus", "saio:0.1:x:y"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-compare", spec}, &stdout, &stderr); err == nil {
			t.Errorf("bad spec %q accepted", spec)
		}
	}
}

func TestGcsimPhasesTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "500", "-phases"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"GenDB", "Reorg1", "Traverse", "Reorg2", "mean garbage %"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q", want)
		}
	}
}

func TestGcsimErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-policy", "saga", "-estimator", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown estimator accepted")
	}
	if err := run([]string{"-selection", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown selection accepted")
	}
	if err := run([]string{"a.odbt", "b.odbt"}, &stdout, &stderr); err == nil {
		t.Error("two trace arguments accepted")
	}
	if err := run([]string{"/nonexistent/trace.odbt"}, &stdout, &stderr); err == nil {
		t.Error("absent trace accepted")
	}
}

func TestGcsimDistributions(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "400", "-dist"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "yield distribution") || !strings.Contains(out, "interval distribution") {
		t.Errorf("distributions missing:\n%s", out)
	}
}
