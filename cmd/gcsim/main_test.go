package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/obs"
	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

// gcsim with no trace argument generates its own small run in memory, so
// the tests drive the full pipeline through the CLI surface.

func TestGcsimSAIOSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.15"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"policy:            saio(15%)", "collections:", "gc I/O share:", "phase Reorg2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestGcsimPolicyVariants(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "saga", "-frac", "0.10", "-estimator", "oracle"},
		{"-policy", "saga", "-estimator", "fgs-pp", "-sloperef", "100"},
		{"-policy", "pi", "-frac", "0.10"},
		{"-policy", "coupled", "-frac", "0.10"},
		{"-policy", "fixed", "-interval", "500"},
		{"-policy", "never"},
		{"-policy", "fixed", "-interval", "400", "-selection", "round-robin", "-fixups"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestGcsimPerCollectionLog(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "400", "-log", "-logevery", "10"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "#   1 ") {
		t.Errorf("per-collection log missing:\n%s", stdout.String())
	}
}

// TestGcsimStreamsTraceFile exercises the streaming path: a trace file on
// disk is replayed without loading it whole.
func TestGcsimStreamsTraceFile(t *testing.T) {
	p := oo7.SmallPrime(3)
	p.NumCompPerModule = 15
	p.NumAssmLevels = 3
	tr, err := oo7.FullTrace(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.odbt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAll(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "saio", "-frac", "0.20", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "collections:") {
		t.Errorf("summary missing:\n%s", stdout.String())
	}
}

func TestGcsimCompare(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compare", "saio:0.1,saga:0.1:oracle,fixed:400,never"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"saio(10%)", "saga(10%,oracle)", "fixed(400)", "never", "mean garbage %"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare table missing %q:\n%s", want, out)
		}
	}
}

func TestGcsimCompareSpecErrors(t *testing.T) {
	for _, spec := range []string{"wat", "saio:x", "fixed:x", "saga:0.1:bogus", "saio:0.1:x:y"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-compare", spec}, &stdout, &stderr); err == nil {
			t.Errorf("bad spec %q accepted", spec)
		}
	}
}

func TestGcsimPhasesTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "500", "-phases"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"GenDB", "Reorg1", "Traverse", "Reorg2", "mean garbage %"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q", want)
		}
	}
}

func TestGcsimErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-policy", "saga", "-estimator", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown estimator accepted")
	}
	if err := run([]string{"-selection", "wat"}, &stdout, &stderr); err == nil {
		t.Error("unknown selection accepted")
	}
	if err := run([]string{"a.odbt", "b.odbt"}, &stdout, &stderr); err == nil {
		t.Error("two trace arguments accepted")
	}
	if err := run([]string{"/nonexistent/trace.odbt"}, &stdout, &stderr); err == nil {
		t.Error("absent trace accepted")
	}
}

func TestGcsimDistributions(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "fixed", "-interval", "400", "-dist"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "yield distribution") || !strings.Contains(out, "interval distribution") {
		t.Errorf("distributions missing:\n%s", out)
	}
}

// TestGcsimFlagValidation checks that out-of-range flag values are rejected
// with an error naming the flag, rather than clamped or silently accepted.
func TestGcsimFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"logevery zero", []string{"-log", "-logevery", "0"}, "-logevery"},
		{"logevery negative", []string{"-log", "-logevery", "-3"}, "-logevery"},
		{"frac negative", []string{"-frac", "-0.1"}, "-frac"},
		{"frac above one", []string{"-frac", "1.5"}, "-frac"},
		{"history negative", []string{"-history", "-1"}, "-history"},
		{"preamble negative", []string{"-preamble", "-1"}, "-preamble"},
		{"serve-after negative", []string{"-http", ":0", "-serve-after", "-1s"}, "-serve-after"},
		{"serve-after without http", []string{"-serve-after", "1s"}, "-http"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("args %v: error %v, want mention of %q", c.args, err, c.want)
			}
		})
	}
}

// TestGcsimEventsAndManifest drives the observability path end to end: a run
// with -events and -manifest writes a valid JSONL log and a manifest whose
// artifact digest matches the log, and a second identical run reproduces both
// byte for byte.
func TestGcsimEventsAndManifest(t *testing.T) {
	dir := t.TempDir()
	do := func(sub string) (eventsBytes []byte, m *obs.Manifest) {
		t.Helper()
		events := filepath.Join(dir, sub+".jsonl")
		manifest := filepath.Join(dir, sub+".json")
		var stdout, stderr bytes.Buffer
		err := run([]string{"-policy", "saio", "-frac", "0.15",
			"-events", events, "-manifest", manifest}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, err := os.ReadFile(events)
		if err != nil {
			t.Fatal(err)
		}
		m, err = obs.ReadManifest(manifest)
		if err != nil {
			t.Fatal(err)
		}
		return b, m
	}

	eventsA, mA := do("a")
	envs, err := obs.ReadAll(bytes.NewReader(eventsA))
	if err != nil {
		t.Fatalf("event log does not validate: %v", err)
	}
	if len(envs) == 0 {
		t.Fatal("empty event log")
	}
	if envs[0].Type != obs.TypeRunStart || envs[len(envs)-1].Type != obs.TypeRunEnd {
		t.Errorf("log not bracketed by run_start/run_end: %s ... %s",
			envs[0].Type, envs[len(envs)-1].Type)
	}
	if mA.Policy != "saio(15%)" || mA.Trace == nil || mA.Trace.Source != "generated:oo7" {
		t.Errorf("manifest provenance wrong: %+v", mA)
	}
	if len(mA.Artifacts) != 1 || mA.Artifacts[0].Bytes != int64(len(eventsA)) {
		t.Errorf("manifest artifact digest wrong: %+v", mA.Artifacts)
	}
	if mA.Summary == nil || mA.Summary.Collections == 0 {
		t.Errorf("manifest summary missing: %+v", mA.Summary)
	}

	eventsB, mB := do("b")
	if !bytes.Equal(eventsA, eventsB) {
		t.Error("identical-seed runs wrote different event logs")
	}
	if mA.SummarySHA256 != mB.SummarySHA256 || mA.Artifacts[0].SHA256 != mB.Artifacts[0].SHA256 {
		t.Error("identical-seed runs produced different manifest digests")
	}
}

// TestGcsimHTTP runs with -http and scrapes the endpoints after the run, the
// CLI-level counterpart of the handler tests in internal/obs.
func TestGcsimHTTP(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policy", "saio", "-http", "127.0.0.1:0",
		"-serve-after", "1ms"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "serving metrics on http://") {
		t.Errorf("bound address not announced:\n%s", stdout.String())
	}
}
