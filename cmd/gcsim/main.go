// Command gcsim runs one garbage-collection simulation over a trace file
// with a chosen collection-rate policy, printing a per-collection log and a
// run summary.
//
// Usage:
//
//	gcsim -policy saio -frac 0.10 trace.odbt
//	gcsim -policy saga -frac 0.05 -estimator fgs-hb -history 0.8 trace.odbt
//	gcsim -policy fixed -interval 200 -phases -dist trace.odbt
//	gcsim -compare "saio:0.1,saga:0.1:oracle,pi:0.1,fixed:300,never"
//	gcsim -fault-profile flaky-io -fault-seed 7       # chaos run
//	gcsim -stop-after 50000 -checkpoint run.ckpt      # save state and exit
//	gcsim -resume run.ckpt                            # continue that run
//
// If no trace file is given, a fresh OO7 trace is generated in memory
// (flags -conn and -seed control it); trace files are replayed as streams.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/oo7"
	"odbgc/internal/sim"
	"odbgc/internal/simerr"
	"odbgc/internal/storage/disk"
	"odbgc/internal/trace"
)

// memSource replays an in-memory trace as an event stream, so generated and
// file-backed traces drive the simulator through the same loop.
type memSource struct {
	events []trace.Event
	i      int
}

func (s *memSource) Read() (trace.Event, error) {
	if s.i >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	e := s.events[s.i]
	s.i++
	return e, nil
}

func main() {
	// Two-stage graceful shutdown: the first SIGINT/SIGTERM drains (the run
	// stops at the next event boundary and, with -checkpoint, saves a
	// resumable checkpoint); the second cancels hard.
	sd := obs.NewShutdown(context.Background())
	stop := sd.Notify()
	defer stop()
	if err := runWithShutdown(sd, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		os.Exit(1)
	}
}

// run executes the CLI with no signals wired; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	return runWithShutdown(obs.NewShutdown(context.Background()), args, stdout, stderr)
}

func runWithShutdown(sd *obs.Shutdown, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy    = fs.String("policy", "saio", "rate policy: saio, saga, pi, coupled, fixed, never")
		frac      = fs.Float64("frac", 0.10, "requested fraction for saio (I/O share) or saga/pi (garbage share)")
		interval  = fs.Int("interval", 200, "fixed policy: pointer overwrites per collection")
		estimator = fs.String("estimator", "fgs-hb", "garbage estimator: oracle, cgs-cb, fgs-hb, fgs-window, fgs-pp")
		history   = fs.Float64("history", 0.8, "estimator history factor (or window length for fgs-window)")
		hist      = fs.Int("chist", 0, "saio history size c_hist in collections")
		slopeRef  = fs.Uint64("sloperef", 0, "saga time-weighted slope reference interval (0 = paper formula)")
		selection = fs.String("selection", "updated-pointer", "partition selection: updated-pointer, hybrid, random, round-robin, oracle-max-garbage")
		preamble  = fs.Int("preamble", 10, "cold-start collections excluded from summary means")
		conn      = fs.Int("conn", 3, "connectivity when generating a trace in memory")
		seed      = fs.Int64("seed", 1, "seed when generating a trace in memory")
		fixups    = fs.Bool("fixups", false, "charge physical pointer-fixup I/O to the collector")
		perColl   = fs.Bool("log", false, "print one line per collection")
		every     = fs.Int("logevery", 1, "with -log, print every Nth collection")
		phasesOut = fs.Bool("phases", false, "print a per-phase summary table")
		dist      = fs.Bool("dist", false, "print collection yield and interval distributions")
		compare   = fs.String("compare", "", `comma-separated policy specs to compare on the same trace, e.g. "saio:0.1,saga:0.1:fgs-hb,fixed:300,never"`)
		faultProf = fs.String("fault-profile", "off", "fault-injection profile: "+strings.Join(fault.ProfileNames(), ", "))
		faultSeed = fs.Int64("fault-seed", 1, "seed for the fault schedule (independent of -seed)")
		lenient   = fs.Bool("lenient", false, "tolerate a truncated trace file: run on the surviving prefix")
		stopAfter = fs.Int("stop-after", 0, "stop after N events (0 = run to completion); with -checkpoint, save state there")
		ckptPath  = fs.String("checkpoint", "", "write a resumable checkpoint to this path when -stop-after is reached or the run is interrupted (SIGINT)")
		runLimit  = fs.Duration("run-timeout", 0, "abort the run after this much wall-clock time, classified as a timeout (0 = no deadline)")
		resumeCkp = fs.String("resume", "", "resume a run from a checkpoint file written by -checkpoint")
		eventsOut = fs.String("events", "", "write a structured JSONL event log to this path (see cmd/obsdump)")
		spansOut  = fs.String("spans", "", "write GC collection spans (same schema as the live server's flight recorder) to this path as JSONL")
		manifest  = fs.String("manifest", "", "write a run provenance manifest (config, seeds, trace identity, artifact digests) to this path")
		httpAddr  = fs.String("http", "", `serve /metrics, /healthz, /statusz and /debug/pprof on this address (e.g. ":8080") while running`)
		serveFor  = fs.Duration("serve-after", 0, "with -http, keep serving this long after the run completes")
		dataDir   = fs.String("data-dir", "", "persist the run to a crash-safe disk store in this directory (WAL + checksummed pages)")
		fsyncMode = fs.String("fsync", "group", "with -data-dir, WAL fsync policy: always, group, never")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(*every, *frac, *history, *preamble, *serveFor, *httpAddr); err != nil {
		return err
	}

	profile, err := fault.LookupProfile(*faultProf)
	if err != nil {
		return err
	}
	faultsOn := profile.Storage() || profile.Estimator() || profile.Trace()

	if *compare != "" {
		if faultsOn || *ckptPath != "" || *resumeCkp != "" || *stopAfter != 0 {
			return fmt.Errorf("-compare does not support fault injection or checkpointing; run policies one at a time")
		}
		if *eventsOut != "" || *spansOut != "" || *manifest != "" || *httpAddr != "" {
			return fmt.Errorf("-compare does not support -events, -spans, -manifest or -http; run policies one at a time")
		}
		return runCompare(stdout, fs, *compare, *selection, *preamble, *conn, *seed, *fixups)
	}

	// runCtx is the hard-abort context: the second interrupt or the
	// -run-timeout deadline ends the run immediately (no checkpoint).
	runCtx := sd.Context()
	if *runLimit > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *runLimit)
		defer cancel()
	}

	pol, chaos, err := buildPolicy(*policy, *frac, *interval, *estimator, *history, *hist, *slopeRef, profile, *faultSeed)
	if err != nil {
		return err
	}
	sel, err := gc.NewSelectionPolicy(*selection, *seed)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Policy:              pol,
		Selection:           sel,
		PreambleCollections: *preamble,
		PhysicalFixups:      *fixups,
		FaultProfile:        profile,
		FaultSeed:           *faultSeed,
	}

	var durable *disk.Store
	closeDurable := func() error {
		if durable == nil {
			return nil
		}
		err := durable.Close()
		durable = nil
		if err != nil {
			return fmt.Errorf("closing durable store %s: %w", *dataDir, err)
		}
		return nil
	}
	defer func() { _ = closeDurable() }()
	if *dataDir != "" {
		if *resumeCkp != "" {
			return fmt.Errorf("-data-dir does not combine with -resume: the durable store already persists the run it recorded")
		}
		fpol, err := disk.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		var dfs disk.FS = disk.OSFS{Dir: *dataDir}
		if profile.Disk() {
			dfs = fault.NewDiskChaos(dfs, profile, *faultSeed)
		}
		st, info, err := disk.Open(disk.Options{FS: dfs, Fsync: fpol})
		if err != nil {
			return fmt.Errorf("opening durable store in %s: %w", *dataDir, err)
		}
		if info.Objects > 0 {
			_ = st.Close()
			return fmt.Errorf("data dir %s holds %d objects from an earlier run; replaying a trace over recovered state would collide — point -data-dir at a fresh directory", *dataDir, info.Objects)
		}
		durable = st
		cfg.Durable = st
		fmt.Fprintf(stdout, "durable store in %s (fsync=%s)\n", *dataDir, fpol)
	}

	// Observability taps must exist before the simulator: sim.New announces
	// the run to its observer.
	var observers []obs.Observer
	var events *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		events = obs.NewJSONLWriter(f)
		observers = append(observers, events)
	}
	closeEvents := func() error {
		if events == nil {
			return nil
		}
		err := events.Close()
		events = nil
		if err != nil {
			return fmt.Errorf("writing event log %s: %w", *eventsOut, err)
		}
		return nil
	}
	defer func() { _ = closeEvents() }()
	var live *obs.Live
	if *httpAddr != "" {
		live = obs.NewLive()
		bound, stopServe, err := obs.ListenAndServe(*httpAddr, live)
		if err != nil {
			return fmt.Errorf("starting metrics server: %w", err)
		}
		defer stopServe()
		fmt.Fprintf(stdout, "serving metrics on http://%s/metrics\n", bound)
		observers = append(observers, live)
		// Flip /healthz to "draining" the moment shutdown begins, even if
		// the simulation is mid-step.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-sd.Draining():
				live.SetDraining(true)
			case <-watchDone:
			}
		}()
	}
	cfg.Observer = obs.NewMulti(observers...)
	var spanRec *span.Recorder
	if *spansOut != "" {
		// Generous capacity: a simulation run should dump every collection
		// span, not just a retained tail.
		spanRec = span.NewRecorder(span.Config{Capacity: 8192})
		cfg.Spans = spanRec
	}

	var s *sim.Simulator
	skip := 0
	if *resumeCkp != "" {
		cp, err := sim.LoadCheckpoint(*resumeCkp)
		if err != nil {
			return err
		}
		s, err = sim.Resume(cfg, cp)
		if err != nil {
			return err
		}
		skip = cp.Step
		fmt.Fprintf(stdout, "resumed at event %d from %s\n", skip, *resumeCkp)
	} else {
		s, err = sim.New(cfg)
		if err != nil {
			return err
		}
	}

	var src sim.EventSource
	var rd *trace.Reader
	var traceID *obs.TraceIdentity
	switch fs.NArg() {
	case 0:
		tr, err := oo7.FullTrace(oo7.SmallPrime(*conn), *seed)
		if err != nil {
			return err
		}
		if *manifest != "" {
			sum, err := obs.HashTrace(tr)
			if err != nil {
				return err
			}
			traceID = &obs.TraceIdentity{Source: "generated:oo7", Events: tr.Len(), SHA256: sum}
		}
		src = &memSource{events: tr.Events}
	case 1:
		// Trace files are replayed as a stream: no need to hold the whole
		// trace in memory.
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		var r io.Reader = f
		if profile.Trace() {
			st, err := f.Stat()
			if err != nil {
				return err
			}
			r, err = fault.CorruptTrace(f, st.Size(), profile, *faultSeed)
			if err != nil {
				return err
			}
		}
		if *manifest != "" {
			_, sum, err := obs.HashFile(fs.Arg(0))
			if err != nil {
				return err
			}
			// Events is filled in after the run; the file digest pins identity.
			traceID = &obs.TraceIdentity{Source: "file:" + filepath.Base(fs.Arg(0)), SHA256: sum}
		}
		rd, err = trace.NewReader(r)
		if err != nil {
			return err
		}
		rd.Lenient = *lenient
		src = rd
	default:
		return fmt.Errorf("usage: gcsim [flags] [trace.odbt]")
	}

	// On resume, spool past the events the checkpointed run already consumed.
	for i := 0; i < skip; i++ {
		if _, err := src.Read(); err != nil {
			return fmt.Errorf("checkpoint cursor %d is past the end of this trace (event %d: %w)", skip, i, err)
		}
	}

	n, done, interrupted := skip, false, false
	for !done && !interrupted && (*stopAfter <= 0 || n < *stopAfter) {
		if err := runCtx.Err(); err != nil {
			return fmt.Errorf("run aborted at event %d: %w", n, simerr.FromContext(err))
		}
		select {
		case <-sd.Draining():
			interrupted = true
			continue
		default:
		}
		e, err := src.Read()
		if errors.Is(err, io.EOF) {
			done = true
			break
		}
		if err != nil {
			return fmt.Errorf("reading event %d: %w", n, err)
		}
		if err := s.Step(&e); err != nil {
			return err
		}
		n++
	}

	if interrupted {
		fmt.Fprintf(stdout, "interrupt: draining at event %d\n", n)
		if *ckptPath == "" {
			return simerr.Canceledf(
				"interrupted at event %d; rerun with -checkpoint PATH to make interrupts resumable", n)
		}
	}
	if !done && *ckptPath != "" {
		// The heap may be mid-construction at the requested cursor; step on
		// until the simulator accepts a checkpoint.
		cp, err := s.Checkpoint()
		for err != nil {
			e, rerr := src.Read()
			if rerr != nil {
				return fmt.Errorf("no checkpointable state before trace end: %w", err)
			}
			if serr := s.Step(&e); serr != nil {
				return serr
			}
			n++
			cp, err = s.Checkpoint()
		}
		if err := sim.SaveCheckpoint(*ckptPath, cp); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "checkpointed %d events to %s; resume with -resume %s\n", n, *ckptPath, *ckptPath)
		return closeEvents()
	}
	if done && *ckptPath != "" && *stopAfter > 0 {
		fmt.Fprintf(stdout, "trace ended at event %d, before -stop-after %d: no checkpoint written\n", n, *stopAfter)
	}

	res, err := s.Finish()
	if err != nil {
		return err
	}
	if rd != nil && rd.Truncated() {
		fmt.Fprintf(stdout, "note: trace was truncated; ran on the surviving %d-event prefix\n", res.Events)
	}

	if *perColl {
		for i := 0; i < len(res.Collections); i += *every {
			c := res.Collections[i]
			fmt.Fprintf(stdout, "#%4d %-9s ow=%7d interval=%5d part=%3d reclaimed=%7dB live=%7dB garbage=%.3f gcio=%d\n",
				c.Index, c.Phase, c.Clock.Overwrites, c.Interval, c.Partition,
				c.ReclaimedBytes, c.LiveBytes, c.ActualGarbageFrac, c.IO.GCIO())
		}
	}

	printSummary(stdout, res)
	if inj := s.Injector(); inj != nil {
		st := inj.Stats()
		fmt.Fprintf(stdout, "fault injection:   %s: %d of %d storage ops failed transiently (%d bursts)\n",
			profile.Name, st.Injected, st.Ops, st.Bursts)
	}
	if chaos != nil {
		fmt.Fprintf(stdout, "estimator chaos:   %d signals dropped, %d garbled\n", chaos.Dropped(), chaos.Garbled())
	}
	if *phasesOut {
		printPhaseSummaries(stdout, res)
	}
	if *dist {
		if err := printDistributions(stdout, res); err != nil {
			return err
		}
	}

	if durable != nil {
		st := durable.Stats()
		fmt.Fprintf(stdout, "durable store:     %d commits, %d checkpoints, %d objects, %d pages (%d free), wal seq %d\n",
			st.Commits, st.Checkpoints, st.Objects, st.PageCount, st.FreePages, st.Seq)
	}
	if err := closeDurable(); err != nil {
		return err
	}

	// The event log must be flushed before the manifest digests it.
	if err := closeEvents(); err != nil {
		return err
	}
	if spanRec != nil {
		f, err := os.Create(*spansOut)
		if err != nil {
			return err
		}
		nsp, err := spanRec.Dump(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing span log %s: %w", *spansOut, err)
		}
		fmt.Fprintf(stdout, "spans:             %s (%d collection spans)\n", *spansOut, nsp)
	}
	if *manifest != "" {
		if traceID != nil && traceID.Events == 0 {
			traceID.Events = res.Events
		}
		m := &obs.Manifest{
			Tool:      "gcsim",
			Config:    flagKVs(fs),
			Seed:      *seed,
			Policy:    res.PolicyName,
			Selection: res.SelectionName,
			Trace:     traceID,
		}
		if faultsOn {
			m.FaultSeed = *faultSeed
		}
		if *eventsOut != "" {
			if err := m.AddArtifact(*eventsOut); err != nil {
				return err
			}
		}
		if *spansOut != "" {
			if err := m.AddArtifact(*spansOut); err != nil {
				return err
			}
		}
		if err := m.SetSummary(obs.Summary{
			Events:      res.Events,
			Collections: len(res.Collections),
			GCIOFrac:    obs.Float(res.GCIOFrac),
			GarbageFrac: obs.Float(res.GarbageFrac),
			Reclaimed:   res.TotalReclaimed,
			TotalIO:     res.Final.TotalIO(),
		}); err != nil {
			return err
		}
		if err := m.Write(*manifest); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "manifest:          %s (summary %s)\n", *manifest, m.SummarySHA256[:12])
	}
	if *serveFor > 0 {
		fmt.Fprintf(stdout, "run complete; serving metrics for another %s\n", *serveFor)
		select {
		case <-time.After(*serveFor):
		case <-sd.Draining():
		}
	}
	return nil
}

// validateFlags rejects out-of-range flag values with actionable errors
// instead of silently clamping them.
func validateFlags(logEvery int, frac, history float64, preamble int, serveFor time.Duration, httpAddr string) error {
	if logEvery < 1 {
		return fmt.Errorf("-logevery must be >= 1 (got %d)", logEvery)
	}
	if frac < 0 || frac > 1 {
		return fmt.Errorf("-frac must be in [0, 1] (got %g)", frac)
	}
	if history < 0 {
		return fmt.Errorf("-history must be >= 0 (got %g)", history)
	}
	if preamble < 0 {
		return fmt.Errorf("-preamble must be >= 0 (got %d)", preamble)
	}
	if serveFor < 0 {
		return fmt.Errorf("-serve-after must be >= 0 (got %s)", serveFor)
	}
	if serveFor > 0 && httpAddr == "" {
		return fmt.Errorf("-serve-after needs -http to say where to serve")
	}
	return nil
}

// flagKVs snapshots every flag's effective value for the provenance manifest.
func flagKVs(fs *flag.FlagSet) []obs.KV {
	m := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		m[f.Name] = f.Value.String()
	})
	return obs.ConfigKVs(m)
}

// printDistributions renders yield and interval histograms over the run's
// collections.
func printDistributions(w io.Writer, res *sim.Result) error {
	if len(res.Collections) == 0 {
		fmt.Fprintln(w, "no collections: nothing to plot")
		return nil
	}
	maxYield, maxInterval := 1.0, 1.0
	for _, c := range res.Collections {
		if v := float64(c.ReclaimedBytes); v > maxYield {
			maxYield = v
		}
		if v := float64(c.Interval); v > maxInterval {
			maxInterval = v
		}
	}
	yield, err := metrics.NewHistogram(0, maxYield+1, 10)
	if err != nil {
		return err
	}
	interval, err := metrics.NewHistogram(0, maxInterval+1, 10)
	if err != nil {
		return err
	}
	for _, c := range res.Collections {
		yield.Add(float64(c.ReclaimedBytes))
		interval.Add(float64(c.Interval))
	}
	fmt.Fprintf(w, "\ncollection yield distribution (bytes, mean %.0f):\n%s", yield.Mean(), yield.String())
	fmt.Fprintf(w, "\ncollection interval distribution (overwrites, mean %.0f):\n%s", interval.Mean(), interval.String())
	return nil
}

// printPhaseSummaries renders the per-phase breakdown.
func printPhaseSummaries(w io.Writer, res *sim.Result) {
	t := &metrics.Table{Header: []string{"phase", "events", "collections", "reclaimed B", "app I/O", "gc I/O", "mean garbage %"}}
	for _, ps := range res.PhaseSummaries {
		t.AddRow(ps.Label, fmt.Sprint(ps.Events), fmt.Sprint(ps.Collections),
			fmt.Sprint(ps.Reclaimed), fmt.Sprint(ps.IO.AppIO()), fmt.Sprint(ps.IO.GCIO()),
			fmt.Sprintf("%.2f", ps.GarbageFrac*100))
	}
	fmt.Fprint(w, t.String())
}

// runCompare runs several policies on the same in-memory trace and prints a
// comparison table. Specs: name[:frac-or-interval[:estimator]].
func runCompare(w io.Writer, fs *flag.FlagSet, specs, selection string, preamble, conn int, seed int64, fixups bool) error {
	if fs.NArg() > 1 {
		return fmt.Errorf("usage: gcsim -compare ... [trace.odbt]")
	}
	var tr *trace.Trace
	var err error
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		tr, err = trace.ReadAll(f)
		_ = f.Close()
		if err != nil {
			return err
		}
	} else {
		tr, err = oo7.FullTrace(oo7.SmallPrime(conn), seed)
		if err != nil {
			return err
		}
	}

	t := &metrics.Table{Header: []string{"policy", "collections", "total I/O", "gc I/O %", "mean garbage %", "reclaimed %"}}
	for _, spec := range strings.Split(specs, ",") {
		pol, err := parsePolicySpec(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		sel, err := gc.NewSelectionPolicy(selection, seed)
		if err != nil {
			return err
		}
		s, err := sim.New(sim.Config{
			Policy:              pol,
			Selection:           sel,
			PreambleCollections: preamble,
			PhysicalFixups:      fixups,
		})
		if err != nil {
			return err
		}
		res, err := s.Run(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", pol.Name(), err)
		}
		reclaimedPct := 0.0
		if res.TotalGarbage > 0 {
			reclaimedPct = 100 * float64(res.TotalReclaimed) / float64(res.TotalGarbage)
		}
		t.AddRow(res.PolicyName, fmt.Sprint(len(res.Collections)),
			fmt.Sprint(res.Final.TotalIO()),
			fmt.Sprintf("%.2f", res.GCIOFrac*100),
			fmt.Sprintf("%.2f", res.GarbageFrac*100),
			fmt.Sprintf("%.1f", reclaimedPct))
	}
	fmt.Fprint(w, t.String())
	return nil
}

// parsePolicySpec builds a policy from "name[:value[:estimator]]".
func parsePolicySpec(spec string) (core.RatePolicy, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	value := ""
	estName := "fgs-hb"
	if len(parts) > 1 {
		value = parts[1]
	}
	if len(parts) > 2 {
		estName = parts[2]
	}
	if len(parts) > 3 {
		return nil, fmt.Errorf("bad policy spec %q", spec)
	}
	parseFrac := func(def float64) (float64, error) {
		if value == "" {
			return def, nil
		}
		var f float64
		if _, err := fmt.Sscanf(value, "%g", &f); err != nil {
			return 0, fmt.Errorf("bad fraction %q in spec %q", value, spec)
		}
		return f, nil
	}
	switch name {
	case "saio":
		f, err := parseFrac(0.10)
		if err != nil {
			return nil, err
		}
		return core.NewSAIO(core.SAIOConfig{Frac: f})
	case "saga", "pi", "coupled":
		f, err := parseFrac(0.10)
		if err != nil {
			return nil, err
		}
		est, err := core.NewEstimator(estName, 0)
		if err != nil {
			return nil, err
		}
		switch name {
		case "pi":
			return core.NewPIController(core.PIConfig{Frac: f}, est)
		case "coupled":
			return core.NewCoupled(core.CoupledConfig{IOFrac: f, GarbFrac: f}, est)
		default:
			return core.NewSAGA(core.SAGAConfig{Frac: f}, est)
		}
	case "fixed":
		n := 200
		if value != "" {
			if _, err := fmt.Sscanf(value, "%d", &n); err != nil {
				return nil, fmt.Errorf("bad interval %q in spec %q", value, spec)
			}
		}
		return core.NewFixedRate(n)
	case "never":
		return core.NeverCollect{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q in spec %q", name, spec)
	}
}

func printSummary(w io.Writer, res *sim.Result) {
	fmt.Fprintf(w, "policy:            %s (selection %s)\n", res.PolicyName, res.SelectionName)
	fmt.Fprintf(w, "events:            %d\n", res.Events)
	fmt.Fprintf(w, "collections:       %d (preamble %d excluded from means)\n", len(res.Collections), res.EffectivePreamble)
	fmt.Fprintf(w, "I/O:               app %d (r %d / w %d), gc %d (r %d / w %d), total %d\n",
		res.Final.AppIO(), res.Final.AppReads, res.Final.AppWrites,
		res.Final.GCIO(), res.Final.GCReads, res.Final.GCWrites, res.Final.TotalIO())
	fmt.Fprintf(w, "gc I/O share:      %.2f%% of total I/O (measurement window)\n", res.GCIOFrac*100)
	fmt.Fprintf(w, "garbage:           mean %.2f%% of database (sampled; min %.2f%% max %.2f%%)\n",
		res.GarbageFrac*100, res.GarbageFracMin*100, res.GarbageFracMax*100)
	fmt.Fprintf(w, "reclaimed:         %d of %d garbage bytes ever created\n", res.TotalReclaimed, res.TotalGarbage)
	fmt.Fprintf(w, "final database:    %d bytes in %d partitions (%d garbage, %d of it pinned)\n",
		res.FinalDBBytes, res.Partitions, res.FinalGarbage, res.FinalPinnedGarbage)
	for _, m := range res.Phases {
		fmt.Fprintf(w, "phase %-9s at event %d, collection %d, overwrite %d\n",
			m.Label, m.EventIndex, m.Collections, m.Overwrites)
	}
}

// buildPolicy constructs the requested policy. When the fault profile
// corrupts the estimator signal, the estimator is wrapped in a chaos shim;
// the returned *fault.ChaosEstimator (nil otherwise) lets the caller report
// dropout counts.
func buildPolicy(name string, frac float64, interval int, estimator string, history float64, chist int, slopeRef uint64, profile fault.Profile, faultSeed int64) (core.RatePolicy, *fault.ChaosEstimator, error) {
	var chaos *fault.ChaosEstimator
	newEst := func() (core.Estimator, error) {
		est, err := core.NewEstimator(estimator, history)
		if err != nil || !profile.Estimator() {
			return est, err
		}
		chaos, err = fault.NewChaosEstimator(est, profile, faultSeed)
		if err != nil {
			return nil, err
		}
		return chaos, nil
	}
	switch name {
	case "saio":
		pol, err := core.NewSAIO(core.SAIOConfig{Frac: frac, Hist: chist})
		return pol, nil, err
	case "saga":
		est, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: frac, SlopeRef: slopeRef}, est)
		return pol, chaos, err
	case "pi":
		est, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewPIController(core.PIConfig{Frac: frac}, est)
		return pol, chaos, err
	case "coupled":
		est, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewCoupled(core.CoupledConfig{IOFrac: frac, GarbFrac: frac}, est)
		return pol, chaos, err
	case "fixed":
		pol, err := core.NewFixedRate(interval)
		return pol, nil, err
	case "never":
		return core.NeverCollect{}, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown policy %q (have saio, saga, pi, coupled, fixed, never)", name)
	}
}
