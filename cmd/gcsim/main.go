// Command gcsim runs one garbage-collection simulation over a trace file
// with a chosen collection-rate policy, printing a per-collection log and a
// run summary.
//
// Usage:
//
//	gcsim -policy saio -frac 0.10 trace.odbt
//	gcsim -policy saga -frac 0.05 -estimator fgs-hb -history 0.8 trace.odbt
//	gcsim -policy fixed -interval 200 -phases -dist trace.odbt
//	gcsim -compare "saio:0.1,saga:0.1:oracle,pi:0.1,fixed:300,never"
//
// If no trace file is given, a fresh OO7 trace is generated in memory
// (flags -conn and -seed control it); trace files are replayed as streams.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/oo7"
	"odbgc/internal/sim"
	"odbgc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy    = fs.String("policy", "saio", "rate policy: saio, saga, pi, coupled, fixed, never")
		frac      = fs.Float64("frac", 0.10, "requested fraction for saio (I/O share) or saga/pi (garbage share)")
		interval  = fs.Int("interval", 200, "fixed policy: pointer overwrites per collection")
		estimator = fs.String("estimator", "fgs-hb", "garbage estimator: oracle, cgs-cb, fgs-hb, fgs-window, fgs-pp")
		history   = fs.Float64("history", 0.8, "estimator history factor (or window length for fgs-window)")
		hist      = fs.Int("chist", 0, "saio history size c_hist in collections")
		slopeRef  = fs.Uint64("sloperef", 0, "saga time-weighted slope reference interval (0 = paper formula)")
		selection = fs.String("selection", "updated-pointer", "partition selection: updated-pointer, hybrid, random, round-robin, oracle-max-garbage")
		preamble  = fs.Int("preamble", 10, "cold-start collections excluded from summary means")
		conn      = fs.Int("conn", 3, "connectivity when generating a trace in memory")
		seed      = fs.Int64("seed", 1, "seed when generating a trace in memory")
		fixups    = fs.Bool("fixups", false, "charge physical pointer-fixup I/O to the collector")
		perColl   = fs.Bool("log", false, "print one line per collection")
		every     = fs.Int("logevery", 1, "with -log, print every Nth collection")
		phasesOut = fs.Bool("phases", false, "print a per-phase summary table")
		dist      = fs.Bool("dist", false, "print collection yield and interval distributions")
		compare   = fs.String("compare", "", `comma-separated policy specs to compare on the same trace, e.g. "saio:0.1,saga:0.1:fgs-hb,fixed:300,never"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		return runCompare(stdout, fs, *compare, *selection, *preamble, *conn, *seed, *fixups)
	}

	pol, err := buildPolicy(*policy, *frac, *interval, *estimator, *history, *hist, *slopeRef)
	if err != nil {
		return err
	}
	sel, err := gc.NewSelectionPolicy(*selection, *seed)
	if err != nil {
		return err
	}
	s, err := sim.New(sim.Config{
		Policy:              pol,
		Selection:           sel,
		PreambleCollections: *preamble,
		PhysicalFixups:      *fixups,
	})
	if err != nil {
		return err
	}

	var res *sim.Result
	switch fs.NArg() {
	case 0:
		tr, err := oo7.FullTrace(oo7.SmallPrime(*conn), *seed)
		if err != nil {
			return err
		}
		res, err = s.Run(tr)
		if err != nil {
			return err
		}
	case 1:
		// Trace files are replayed as a stream: no need to hold the whole
		// trace in memory.
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		res, err = s.RunStream(rd)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: gcsim [flags] [trace.odbt]")
	}

	if *perColl {
		step := *every
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Collections); i += step {
			c := res.Collections[i]
			fmt.Fprintf(stdout, "#%4d %-9s ow=%7d interval=%5d part=%3d reclaimed=%7dB live=%7dB garbage=%.3f gcio=%d\n",
				c.Index, c.Phase, c.Clock.Overwrites, c.Interval, c.Partition,
				c.ReclaimedBytes, c.LiveBytes, c.ActualGarbageFrac, c.IO.GCIO())
		}
	}

	printSummary(stdout, res)
	if *phasesOut {
		printPhaseSummaries(stdout, res)
	}
	if *dist {
		if err := printDistributions(stdout, res); err != nil {
			return err
		}
	}
	return nil
}

// printDistributions renders yield and interval histograms over the run's
// collections.
func printDistributions(w io.Writer, res *sim.Result) error {
	if len(res.Collections) == 0 {
		fmt.Fprintln(w, "no collections: nothing to plot")
		return nil
	}
	maxYield, maxInterval := 1.0, 1.0
	for _, c := range res.Collections {
		if v := float64(c.ReclaimedBytes); v > maxYield {
			maxYield = v
		}
		if v := float64(c.Interval); v > maxInterval {
			maxInterval = v
		}
	}
	yield, err := metrics.NewHistogram(0, maxYield+1, 10)
	if err != nil {
		return err
	}
	interval, err := metrics.NewHistogram(0, maxInterval+1, 10)
	if err != nil {
		return err
	}
	for _, c := range res.Collections {
		yield.Add(float64(c.ReclaimedBytes))
		interval.Add(float64(c.Interval))
	}
	fmt.Fprintf(w, "\ncollection yield distribution (bytes, mean %.0f):\n%s", yield.Mean(), yield.String())
	fmt.Fprintf(w, "\ncollection interval distribution (overwrites, mean %.0f):\n%s", interval.Mean(), interval.String())
	return nil
}

// printPhaseSummaries renders the per-phase breakdown.
func printPhaseSummaries(w io.Writer, res *sim.Result) {
	t := &metrics.Table{Header: []string{"phase", "events", "collections", "reclaimed B", "app I/O", "gc I/O", "mean garbage %"}}
	for _, ps := range res.PhaseSummaries {
		t.AddRow(ps.Label, fmt.Sprint(ps.Events), fmt.Sprint(ps.Collections),
			fmt.Sprint(ps.Reclaimed), fmt.Sprint(ps.IO.AppIO()), fmt.Sprint(ps.IO.GCIO()),
			fmt.Sprintf("%.2f", ps.GarbageFrac*100))
	}
	fmt.Fprint(w, t.String())
}

// runCompare runs several policies on the same in-memory trace and prints a
// comparison table. Specs: name[:frac-or-interval[:estimator]].
func runCompare(w io.Writer, fs *flag.FlagSet, specs, selection string, preamble, conn int, seed int64, fixups bool) error {
	if fs.NArg() > 1 {
		return fmt.Errorf("usage: gcsim -compare ... [trace.odbt]")
	}
	var tr *trace.Trace
	var err error
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		tr, err = trace.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		tr, err = oo7.FullTrace(oo7.SmallPrime(conn), seed)
		if err != nil {
			return err
		}
	}

	t := &metrics.Table{Header: []string{"policy", "collections", "total I/O", "gc I/O %", "mean garbage %", "reclaimed %"}}
	for _, spec := range strings.Split(specs, ",") {
		pol, err := parsePolicySpec(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		sel, err := gc.NewSelectionPolicy(selection, seed)
		if err != nil {
			return err
		}
		s, err := sim.New(sim.Config{
			Policy:              pol,
			Selection:           sel,
			PreambleCollections: preamble,
			PhysicalFixups:      fixups,
		})
		if err != nil {
			return err
		}
		res, err := s.Run(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", pol.Name(), err)
		}
		reclaimedPct := 0.0
		if res.TotalGarbage > 0 {
			reclaimedPct = 100 * float64(res.TotalReclaimed) / float64(res.TotalGarbage)
		}
		t.AddRow(res.PolicyName, fmt.Sprint(len(res.Collections)),
			fmt.Sprint(res.Final.TotalIO()),
			fmt.Sprintf("%.2f", res.GCIOFrac*100),
			fmt.Sprintf("%.2f", res.GarbageFrac*100),
			fmt.Sprintf("%.1f", reclaimedPct))
	}
	fmt.Fprint(w, t.String())
	return nil
}

// parsePolicySpec builds a policy from "name[:value[:estimator]]".
func parsePolicySpec(spec string) (core.RatePolicy, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	value := ""
	estName := "fgs-hb"
	if len(parts) > 1 {
		value = parts[1]
	}
	if len(parts) > 2 {
		estName = parts[2]
	}
	if len(parts) > 3 {
		return nil, fmt.Errorf("bad policy spec %q", spec)
	}
	parseFrac := func(def float64) (float64, error) {
		if value == "" {
			return def, nil
		}
		var f float64
		if _, err := fmt.Sscanf(value, "%g", &f); err != nil {
			return 0, fmt.Errorf("bad fraction %q in spec %q", value, spec)
		}
		return f, nil
	}
	switch name {
	case "saio":
		f, err := parseFrac(0.10)
		if err != nil {
			return nil, err
		}
		return core.NewSAIO(core.SAIOConfig{Frac: f})
	case "saga", "pi", "coupled":
		f, err := parseFrac(0.10)
		if err != nil {
			return nil, err
		}
		est, err := core.NewEstimator(estName, 0)
		if err != nil {
			return nil, err
		}
		switch name {
		case "pi":
			return core.NewPIController(core.PIConfig{Frac: f}, est)
		case "coupled":
			return core.NewCoupled(core.CoupledConfig{IOFrac: f, GarbFrac: f}, est)
		default:
			return core.NewSAGA(core.SAGAConfig{Frac: f}, est)
		}
	case "fixed":
		n := 200
		if value != "" {
			if _, err := fmt.Sscanf(value, "%d", &n); err != nil {
				return nil, fmt.Errorf("bad interval %q in spec %q", value, spec)
			}
		}
		return core.NewFixedRate(n)
	case "never":
		return core.NeverCollect{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q in spec %q", name, spec)
	}
}

func printSummary(w io.Writer, res *sim.Result) {
	fmt.Fprintf(w, "policy:            %s (selection %s)\n", res.PolicyName, res.SelectionName)
	fmt.Fprintf(w, "events:            %d\n", res.Events)
	fmt.Fprintf(w, "collections:       %d (preamble %d excluded from means)\n", len(res.Collections), res.EffectivePreamble)
	fmt.Fprintf(w, "I/O:               app %d (r %d / w %d), gc %d (r %d / w %d), total %d\n",
		res.Final.AppIO(), res.Final.AppReads, res.Final.AppWrites,
		res.Final.GCIO(), res.Final.GCReads, res.Final.GCWrites, res.Final.TotalIO())
	fmt.Fprintf(w, "gc I/O share:      %.2f%% of total I/O (measurement window)\n", res.GCIOFrac*100)
	fmt.Fprintf(w, "garbage:           mean %.2f%% of database (sampled; min %.2f%% max %.2f%%)\n",
		res.GarbageFrac*100, res.GarbageFracMin*100, res.GarbageFracMax*100)
	fmt.Fprintf(w, "reclaimed:         %d of %d garbage bytes ever created\n", res.TotalReclaimed, res.TotalGarbage)
	fmt.Fprintf(w, "final database:    %d bytes in %d partitions (%d garbage, %d of it pinned)\n",
		res.FinalDBBytes, res.Partitions, res.FinalGarbage, res.FinalPinnedGarbage)
	for _, m := range res.Phases {
		fmt.Fprintf(w, "phase %-9s at event %d, collection %d, overwrite %d\n",
			m.Label, m.EventIndex, m.Collections, m.Overwrites)
	}
}

func buildPolicy(name string, frac float64, interval int, estimator string, history float64, chist int, slopeRef uint64) (core.RatePolicy, error) {
	newEst := func() (core.Estimator, error) { return core.NewEstimator(estimator, history) }
	switch name {
	case "saio":
		return core.NewSAIO(core.SAIOConfig{Frac: frac, Hist: chist})
	case "saga":
		est, err := newEst()
		if err != nil {
			return nil, err
		}
		return core.NewSAGA(core.SAGAConfig{Frac: frac, SlopeRef: slopeRef}, est)
	case "pi":
		est, err := newEst()
		if err != nil {
			return nil, err
		}
		return core.NewPIController(core.PIConfig{Frac: frac}, est)
	case "coupled":
		est, err := newEst()
		if err != nil {
			return nil, err
		}
		return core.NewCoupled(core.CoupledConfig{IOFrac: frac, GarbFrac: frac}, est)
	case "fixed":
		return core.NewFixedRate(interval)
	case "never":
		return core.NeverCollect{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (have saio, saga, pi, coupled, fixed, never)", name)
	}
}
