package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/server"
	"odbgc/internal/storage"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad profile", []string{"-net-profile", "bogus"}, "profile"},
		{"zero rate", []string{"-rate", "0", "-duration", "1s"}, "rate"},
		{"zero duration", []string{"-duration", "0s"}, "duration"},
		{"positional args", []string{"stray"}, "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run(tc.args, &out, &errb)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestLoadCLIAgainstServer runs the CLI end to end against a real server
// and checks the JSON report parses and is coherent.
func TestLoadCLIAgainstServer(t *testing.T) {
	store := objstore.NewStore()
	mgr, err := storage.NewManager(storage.Config{PageSize: 1024, PagesPerPartition: 4, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewFixedRate(8)
	if err != nil {
		t.Fatal(err)
	}
	live := obs.NewLive()
	m := server.NewMetrics(live.Registry())
	eng, err := server.NewEngine(gc.NewHeap(store, mgr), server.EngineConfig{
		Policy: pol, Selection: gc.UpdatedPointer{}, QueueDepth: 16, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"}, eng, m)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	drain := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, drain) }()
	// done has capacity 1, so the server goroutine never leaks even when
	// the test fails before the drain path consumes the channel.
	defer cancel()

	var out, errb bytes.Buffer
	err = run([]string{
		"-addr", addr,
		"-rate", "300", "-duration", "300ms", "-workers", "4",
		"-net-profile", "net-flaky", "-seed", "3",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("load run failed: %v (stderr: %s)", err, errb.String())
	}
	var rep server.LoadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Arrivals == 0 || rep.OK == 0 {
		t.Fatalf("report shows no traffic: %+v", rep)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved rps %v, want > 0", rep.AchievedRPS)
	}

	close(drain)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain")
	}
}
