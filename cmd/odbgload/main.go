// Command odbgload drives an odbgcd server with open-loop load and
// optional network chaos, reporting achieved throughput, shed rate, and
// latency percentiles as JSON.
//
// Usage:
//
//	odbgload -addr 127.0.0.1:7421 -rate 500 -duration 10s
//	odbgload -rate 2000 -workers 16 -net-profile net-chaos -seed 7
//
// Open-loop means arrivals are scheduled by the clock, not by responses: a
// saturated server faces a growing backlog instead of a politely waiting
// client, which is what makes admission control and shedding observable.
// The chaos profiles (see -net-profile) add slow clients, mid-request
// disconnects, malformed frames, and arrival bursts, all deterministic for
// a given -seed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"odbgc/internal/fault"
	"odbgc/internal/obs"
	"odbgc/internal/server"
)

func main() {
	sd := obs.NewShutdown(context.Background())
	stop := sd.Notify()
	defer stop()
	if err := runWithShutdown(sd, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "odbgload:", err)
		os.Exit(1)
	}
}

// run executes the CLI with no signals wired; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	return runWithShutdown(obs.NewShutdown(context.Background()), args, stdout, stderr)
}

func runWithShutdown(sd *obs.Shutdown, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("odbgload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7421", "odbgcd server to drive")
		rate     = fs.Float64("rate", 200, "arrival rate in requests per second (open loop)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate arrivals")
		workers  = fs.Int("workers", 8, "client session pool size")
		profName = fs.String("net-profile", "net-off", "network chaos profile: "+strings.Join(fault.NetProfileNames(), ", "))
		seed     = fs.Int64("seed", 1, "seed for the chaos schedule (same seed, same schedule)")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: odbgload [flags] (no positional arguments)")
	}
	profile, err := fault.LookupNetProfile(*profName)
	if err != nil {
		return err
	}

	// SIGINT ends the run early; the partial report still prints. The
	// second signal hard-cancels via the context.
	ctx, cancel := context.WithCancel(sd.Context())
	defer cancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-sd.Draining():
			cancel()
		case <-watchDone:
		}
	}()

	rep, err := server.RunLoad(ctx, server.LoadConfig{
		Addr:           *addr,
		Rate:           *rate,
		Duration:       *duration,
		Workers:        *workers,
		Profile:        profile,
		Seed:           *seed,
		RequestTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
