// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so benchmark baselines can be committed and diffed
// mechanically (see `make bench`, which writes BENCH_PR3.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_PR3.json
//
// The benchmark text is echoed to stdout unchanged, so benchjson can sit at
// the end of a pipe without hiding the run from the operator.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix trimmed.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Version    int         `json:"version"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	var out string
	switch {
	case len(args) == 0:
		return fmt.Errorf("usage: go test -bench=. -benchmem | benchjson -o report.json")
	case len(args) == 2 && args[0] == "-o":
		out = args[1]
	default:
		return fmt.Errorf("unknown arguments %v; want -o report.json", args)
	}

	rep := Report{Version: 1}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), out)
	return nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   100   1234 ns/op   56 B/op   7 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, seen
}
