// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so benchmark baselines can be committed and diffed
// mechanically (see `make bench`, which writes the current baseline).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_PR7.json
//	benchjson -diff BENCH_PR5.json BENCH_PR7.json [-threshold 25]
//
// In conversion mode the benchmark text is echoed to stdout unchanged, so
// benchjson can sit at the end of a pipe without hiding the run from the
// operator. In diff mode the two reports are compared benchmark by
// benchmark and the command fails when any shared benchmark's ns/op or
// allocs/op grew by more than the threshold percentage, or when a
// benchmark in the old baseline is missing from the new one.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix trimmed.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Version    int         `json:"version"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "-diff" {
		return runDiff(args[1:], stdout)
	}
	var out string
	switch {
	case len(args) == 0:
		return fmt.Errorf("usage: go test -bench=. -benchmem | benchjson -o report.json\n       benchjson -diff old.json new.json [-threshold pct]")
	case len(args) == 2 && args[0] == "-o":
		out = args[1]
	default:
		return fmt.Errorf("unknown arguments %v; want -o report.json or -diff old.json new.json", args)
	}

	rep := Report{Version: 1}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), out)
	return nil
}

// runDiff compares two reports written by the conversion mode. It prints a
// per-benchmark table of ns/op and allocs/op deltas and fails when any
// benchmark present in both reports regressed by more than the threshold.
func runDiff(args []string, stdout io.Writer) error {
	threshold := 25.0 // percent
	var paths []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-threshold" {
			if i+1 >= len(args) {
				return fmt.Errorf("-threshold needs a percentage")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("bad -threshold %q; want a non-negative percentage", args[i+1])
			}
			threshold = v
			i++
			continue
		}
		paths = append(paths, args[i])
	}
	if len(paths) != 2 {
		return fmt.Errorf("usage: benchjson -diff old.json new.json [-threshold pct]")
	}
	old, err := loadReport(paths[0])
	if err != nil {
		return err
	}
	cur, err := loadReport(paths[1])
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}

	var regressions []string
	fmt.Fprintf(stdout, "%-40s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old allocs", "new allocs", "Δ")
	for _, nb := range cur.Benchmarks {
		ob, shared := oldBy[nb.Name]
		if !shared {
			fmt.Fprintf(stdout, "%-40s %14s %14.0f %8s %10s %10.0f %8s\n",
				nb.Name, "-", nb.NsPerOp, "new", "-", nb.AllocsPerOp, "new")
			continue
		}
		delete(oldBy, nb.Name)
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctDelta(ob.AllocsPerOp, nb.AllocsPerOp)
		fmt.Fprintf(stdout, "%-40s %14.0f %14.0f %7.1f%% %10.0f %10.0f %7.1f%%\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if nsDelta > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op +%.1f%% (threshold %.1f%%)", nb.Name, nsDelta, threshold))
		}
		if allocDelta > threshold && ob.AllocsPerOp > 0 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op +%.1f%% (threshold %.1f%%)", nb.Name, allocDelta, threshold))
		}
	}
	// A benchmark that exists in the old baseline but not the new one is a
	// failure, not a footnote: a silently vanished benchmark usually means
	// a renamed or deleted test, and the perf claim it carried vanishes
	// with it. Re-baseline deliberately or restore the benchmark.
	var dropped []string
	for name := range oldBy {
		dropped = append(dropped, name)
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		ob := oldBy[name]
		fmt.Fprintf(stdout, "%-40s %14.0f %14s %8s %10.0f %10s %8s\n",
			name, ob.NsPerOp, "-", "gone", ob.AllocsPerOp, "-", "gone")
	}
	for _, name := range dropped {
		regressions = append(regressions,
			fmt.Sprintf("%s: present in %s but missing from %s", name, paths[0], paths[1]))
	}
	if len(regressions) > 0 {
		sort.Strings(regressions)
		for _, r := range regressions {
			fmt.Fprintln(stdout, "REGRESSION", r)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.1f%%", len(regressions), threshold)
	}
	fmt.Fprintf(stdout, "benchjson: no regressions beyond %.1f%%\n", threshold)
	return nil
}

// pctDelta returns the percentage change from old to new; a vanishing old
// value with a real new value reads as +100%.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   100   1234 ns/op   56 B/op   7 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, seen
}
