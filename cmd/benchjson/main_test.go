package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: odbgc
BenchmarkSimulateSAIO-8   	       3	 400123456 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkTraceCodec-8     	      10	  50123456 ns/op
BenchmarkSimulateSAGA     	       2	 500000000 ns/op	 2345678 B/op	   23456 allocs/op
PASS
ok  	odbgc	12.345s
`

func TestBenchjson(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out}, strings.NewReader(sampleOutput), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// The bench text passes through unchanged.
	if !strings.Contains(stdout.String(), "BenchmarkSimulateSAIO-8") {
		t.Error("bench output not echoed")
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, b)
	}
	if rep.Version != 1 || rep.Goos != "linux" || rep.Pkg != "odbgc" {
		t.Errorf("header wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Sorted by name, GOMAXPROCS suffix trimmed.
	names := []string{rep.Benchmarks[0].Name, rep.Benchmarks[1].Name, rep.Benchmarks[2].Name}
	want := []string{"BenchmarkSimulateSAGA", "BenchmarkSimulateSAIO", "BenchmarkTraceCodec"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, names[i], want[i])
		}
	}
	saio := rep.Benchmarks[1]
	if saio.Iterations != 3 || saio.NsPerOp != 400123456 || saio.AllocsPerOp != 12345 {
		t.Errorf("SAIO values wrong: %+v", saio)
	}
	// TraceCodec ran without -benchmem: memory fields omitted, not zeroed in.
	if rep.Benchmarks[2].BytesPerOp != 0 || !strings.Contains(string(b), `"ns_per_op"`) {
		t.Errorf("codec values wrong: %+v", rep.Benchmarks[2])
	}
}

func writeReport(t *testing.T, path string, benchmarks []Benchmark) {
	t.Helper()
	data, err := json.Marshal(Report{Version: 1, Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchjsonDiff(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	cur := filepath.Join(dir, "new.json")
	writeReport(t, old, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 500, AllocsPerOp: 10},
	})
	writeReport(t, cur, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: 20}, // improved
		{Name: "BenchmarkB", NsPerOp: 510, AllocsPerOp: 11}, // within threshold
		{Name: "BenchmarkNew", NsPerOp: 5},
	})

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-diff", old, cur}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("improvement flagged as regression: %v\n%s", err, stdout.String())
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkNew", "no regressions"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, stdout.String())
		}
	}

	// A benchmark that disappears from the new baseline fails the diff:
	// silent deletion would let a perf claim vanish without review. The
	// gone benchmark still gets a table row so the operator sees it in
	// context, plus a REGRESSION line naming both files.
	gone := filepath.Join(dir, "gone.json")
	writeReport(t, gone, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: 20},
		{Name: "BenchmarkB", NsPerOp: 510, AllocsPerOp: 11},
	})
	stdout.Reset()
	if err := run([]string{"-diff", old, gone}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("baseline without drops rejected: %v\n%s", err, stdout.String())
	}
	writeReport(t, gone, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: 20},
	})
	stdout.Reset()
	if err := run([]string{"-diff", old, gone}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatalf("dropped benchmark accepted:\n%s", stdout.String())
	}
	for _, want := range []string{
		"BenchmarkB", "gone",
		"REGRESSION BenchmarkB: present in " + old + " but missing from " + gone,
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("dropped-benchmark output missing %q:\n%s", want, stdout.String())
		}
	}

	// A ns/op regression beyond the threshold fails.
	writeReport(t, cur, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 2000, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 500, AllocsPerOp: 10},
	})
	stdout.Reset()
	err := run([]string{"-diff", old, cur}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatalf("100%% ns/op regression accepted:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION BenchmarkA: ns/op +100.0%") {
		t.Errorf("regression line missing:\n%s", stdout.String())
	}

	// The same numbers pass with a loose threshold.
	if err := run([]string{"-diff", old, cur, "-threshold", "150"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Errorf("regression within a loosened threshold rejected: %v", err)
	}

	// Alloc growth alone also fails.
	writeReport(t, cur, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 200},
		{Name: "BenchmarkB", NsPerOp: 500, AllocsPerOp: 10},
	})
	stdout.Reset()
	if err := run([]string{"-diff", old, cur}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Errorf("alloc regression accepted:\n%s", stdout.String())
	}

	if err := run([]string{"-diff", old}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("single-path diff accepted")
	}
	if err := run([]string{"-diff", old, cur, "-threshold", "x"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestBenchjsonErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run([]string{"-x", "y"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-o", out}, strings.NewReader("PASS\nok\n"), &stdout, &stderr); err == nil {
		t.Error("benchmark-free input accepted")
	}
}
