// Command odbglint is the repository's multichecker: it runs the custom
// analyzers that enforce the simulator's reproducibility contract over the
// module and exits nonzero on any finding.
//
//	go run ./cmd/odbglint ./...     # what make lint and CI run
//	go run ./cmd/odbglint -list     # show the analyzers
//
// The analyzers (see internal/analysis/...):
//
//	detrand    unseeded randomness, wall-clock reads, env lookups in
//	           deterministic packages
//	maporder   map iteration order leaking into slices, output, encoders
//	nopanic    panic / log.Fatal* / os.Exit outside package main and tests
//	snapcover  snapshot state structs with unencoded or undecoded fields
//
// A genuinely intended violation is suppressed in place with
//
//	//lint:allow <analyzer> <reason>
//
// on or directly above the offending line; suppressions without a reason
// are themselves findings.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/detrand"
	"odbgc/internal/analysis/maporder"
	"odbgc/internal/analysis/nopanic"
	"odbgc/internal/analysis/snapcover"
)

var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	nopanic.Analyzer,
	snapcover.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odbglint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunPackages(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odbglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
