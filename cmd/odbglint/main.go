// Command odbglint is the repository's multichecker: it runs the custom
// analyzers that enforce the simulator's reproducibility contract over the
// module and exits nonzero on any finding.
//
//	go run ./cmd/odbglint ./...               # what make lint and CI run
//	go run ./cmd/odbglint -list               # show the analyzers
//	go run ./cmd/odbglint -only goleak ./...  # one analyzer (comma-separable)
//
// The analyzers (see internal/analysis/...):
//
//	detrand            unseeded randomness, wall-clock reads, env lookups
//	                   in deterministic packages
//	maporder           map iteration order leaking into slices, output,
//	                   encoders
//	nopanic            panic / log.Fatal* / os.Exit outside package main
//	                   and tests
//	snapcover          snapshot state structs with unencoded or undecoded
//	                   fields
//	ctxflow            context.Context threading: first parameter, never a
//	                   struct field, checked in unbounded loops
//	errflow            discarded errors, ==/!= sentinel comparisons, and
//	                   non-%w wrapping of classified errors
//	goleak             go statements whose goroutines can never observe
//	                   cancellation
//	detrand-transitive call chains from deterministic packages to
//	                   randomness, clocks, or the environment
//	hotalloc           compiler-confirmed heap allocations on hot loop
//	                   paths
//	hotbox             allocating interface conversions (boxing) on hot
//	                   paths
//	hotdefer           defer statements inside hot loops
//	prealloc           append-growth in hot range loops with derivable
//	                   length
//	lockcheck          mutex discipline: every Lock reaches an Unlock on
//	                   every path, no double-lock, no copied locks, no
//	                   blocking calls while a hot-package mutex is held
//	guarded            inferred guarded fields: accesses reachable from a
//	                   go statement without the field's majority mutex, and
//	                   sync/atomic mixed with direct access
//	lifecycle          declarative call-order protocols: WAL staging before
//	                   commit, no checkpoint over staged records, span
//	                   Start/Finish pairing, buffer-pool Ref/Unref balance
//
// ctxflow, errflow, goleak, and detrand-transitive are dataflow analyzers
// built on the control-flow graphs of internal/analysis/cfg and the
// whole-module call graph of internal/analysis/callgraph. hotalloc, hotbox,
// hotdefer, and prealloc are the performance layer: internal/analysis/hotpath
// marks the hot region (benchmark bodies, curated simulator/trace/server
// roots, unbounded serving loops, closed over the call graph) and
// internal/analysis/escape turns `go build -gcflags='-m=2 -l'` diagnostics
// into the allocation facts they join against. lockcheck, guarded, and
// lifecycle are the concurrency-safety layer (`make lint-concurrency` runs
// just these), path-sensitive over the same CFGs and call graph.
//
// -json emits the findings as a JSON array (file/line/col/analyzer/message
// and, for call-graph findings, the call chain) for CI artifacts and
// scripted triage.
//
// The performance layer also maintains an allocation budget:
//
//	go run ./cmd/odbglint -allocbudget ./...        # fail on hot-path allocation growth
//	go run ./cmd/odbglint -write-allocbudget ./...  # re-baseline lint/allocbudget.json
//
// A genuinely intended violation is suppressed in place with
//
//	//lint:allow <analyzer> <reason>
//
// on or directly above the offending line; suppressions without a reason
// are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/allocbudget"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/ctxflow"
	"odbgc/internal/analysis/detrand"
	"odbgc/internal/analysis/detrandtrans"
	"odbgc/internal/analysis/errflow"
	"odbgc/internal/analysis/escape"
	"odbgc/internal/analysis/goleak"
	"odbgc/internal/analysis/guarded"
	"odbgc/internal/analysis/hotalloc"
	"odbgc/internal/analysis/hotbox"
	"odbgc/internal/analysis/hotdefer"
	"odbgc/internal/analysis/hotpath"
	"odbgc/internal/analysis/lifecycle"
	"odbgc/internal/analysis/lockcheck"
	"odbgc/internal/analysis/maporder"
	"odbgc/internal/analysis/nopanic"
	"odbgc/internal/analysis/prealloc"
	"odbgc/internal/analysis/snapcover"
)

var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	nopanic.Analyzer,
	snapcover.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
	goleak.Analyzer,
	detrandtrans.Analyzer,
	hotalloc.Analyzer,
	hotbox.Analyzer,
	hotdefer.Analyzer,
	prealloc.Analyzer,
	lockcheck.Analyzer,
	guarded.Analyzer,
	lifecycle.Analyzer,
}

// factAnalyzers names the analyzers that consume compiler escape facts; the
// driver prewarms the fact tables (bounded-parallel `go build` runs over
// the hot packages) when any of them — or the allocation budget — is in
// play.
var factAnalyzers = map[string]bool{"hotalloc": true, "hotbox": true}

// selectAnalyzers filters the suite down to the comma-separated names in
// only; an empty only keeps everything. Unknown names are an error so a
// typo cannot silently lint nothing.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run only the named analyzers (comma-separated)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	checkBudget := flag.Bool("allocbudget", false, "also fail when a hot function allocates on more lines than lint/allocbudget.json records")
	writeBudget := flag.Bool("write-allocbudget", false, "recompute the allocation budget and rewrite the budget file")
	budgetFile := flag.String("allocbudget-file", filepath.Join("lint", "allocbudget.json"), "allocation budget file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odbglint [-only analyzer,...] [-allocbudget|-write-allocbudget] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	// Allow directives are validated against the full suite even under
	// -only, so a suppression for an unselected analyzer stays legal.
	for _, a := range analyzers {
		analysis.KnownAllowNames = append(analysis.KnownAllowNames, a.Name)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	mod := analysis.NewModule(pkgs)

	needFacts := *checkBudget || *writeBudget
	for _, a := range suite {
		if factAnalyzers[a.Name] {
			needFacts = true
		}
	}
	if needFacts {
		prewarmFacts(mod)
	}

	findings, err := analysis.RunModule(mod, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for i := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil {
				findings[i].Pos.Filename = rel
			}
		}
	}
	if *jsonOut {
		printJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	failures := len(findings)
	switch {
	case *writeBudget:
		b, err := allocbudget.Compute(mod)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odbglint:", err)
			os.Exit(2)
		}
		if err := b.Write(*budgetFile); err != nil {
			fmt.Fprintln(os.Stderr, "odbglint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "odbglint: wrote %s (%d budgeted function(s))\n", *budgetFile, len(b.Functions))
	case *checkBudget:
		b, err := allocbudget.Compute(mod)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odbglint:", err)
			os.Exit(2)
		}
		recorded, err := allocbudget.Load(*budgetFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odbglint:", err)
			os.Exit(2)
		}
		regs := allocbudget.Diff(recorded, b)
		for _, r := range regs {
			fmt.Println(r)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "odbglint: %d allocation budget regression(s); fix the allocation or re-baseline with -write-allocbudget\n", len(regs))
		}
		failures += len(regs)
	}

	if failures > 0 {
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "odbglint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// jsonFinding is the -json record: position, analyzer, message, and — for
// findings that cross the call graph (lockcheck's transitive blocking,
// detrand-transitive) — the call chain from the reported site to the sink.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// printJSON writes the findings as one JSON array on stdout. An empty run
// prints [] so CI artifacts are always well-formed.
func printJSON(findings []analysis.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Chain:    f.Chain,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
}

// prewarmFacts builds escape fact tables for the packages that contain hot
// functions, in parallel, before the analyzers run sequentially.
func prewarmFacts(mod *analysis.Module) {
	g := callgraph.For(mod)
	region := hotpath.For(mod)
	seen := make(map[*analysis.Package]bool)
	var hotPkgs []*analysis.Package
	for _, n := range region.Functions(g) {
		if !seen[n.Pkg] {
			seen[n.Pkg] = true
			hotPkgs = append(hotPkgs, n.Pkg)
		}
	}
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	escape.Prewarm(mod, hotPkgs, workers)
}
