// Command odbglint is the repository's multichecker: it runs the custom
// analyzers that enforce the simulator's reproducibility contract over the
// module and exits nonzero on any finding.
//
//	go run ./cmd/odbglint ./...               # what make lint and CI run
//	go run ./cmd/odbglint -list               # show the analyzers
//	go run ./cmd/odbglint -only goleak ./...  # one analyzer (comma-separable)
//
// The analyzers (see internal/analysis/...):
//
//	detrand            unseeded randomness, wall-clock reads, env lookups
//	                   in deterministic packages
//	maporder           map iteration order leaking into slices, output,
//	                   encoders
//	nopanic            panic / log.Fatal* / os.Exit outside package main
//	                   and tests
//	snapcover          snapshot state structs with unencoded or undecoded
//	                   fields
//	ctxflow            context.Context threading: first parameter, never a
//	                   struct field, checked in unbounded loops
//	errflow            discarded errors, ==/!= sentinel comparisons, and
//	                   non-%w wrapping of classified errors
//	goleak             go statements whose goroutines can never observe
//	                   cancellation
//	detrand-transitive call chains from deterministic packages to
//	                   randomness, clocks, or the environment
//
// The last four are dataflow analyzers built on the control-flow graphs of
// internal/analysis/cfg and the whole-module call graph of
// internal/analysis/callgraph.
//
// A genuinely intended violation is suppressed in place with
//
//	//lint:allow <analyzer> <reason>
//
// on or directly above the offending line; suppressions without a reason
// are themselves findings.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/ctxflow"
	"odbgc/internal/analysis/detrand"
	"odbgc/internal/analysis/detrandtrans"
	"odbgc/internal/analysis/errflow"
	"odbgc/internal/analysis/goleak"
	"odbgc/internal/analysis/maporder"
	"odbgc/internal/analysis/nopanic"
	"odbgc/internal/analysis/snapcover"
)

var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	nopanic.Analyzer,
	snapcover.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
	goleak.Analyzer,
	detrandtrans.Analyzer,
}

// selectAnalyzers filters the suite down to the comma-separated names in
// only; an empty only keeps everything. Unknown names are an error so a
// typo cannot silently lint nothing.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run only the named analyzers (comma-separated)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odbglint [-only analyzer,...] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	// Allow directives are validated against the full suite even under
	// -only, so a suppression for an unselected analyzer stays legal.
	for _, a := range analyzers {
		analysis.KnownAllowNames = append(analysis.KnownAllowNames, a.Name)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunPackages(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odbglint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odbglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
