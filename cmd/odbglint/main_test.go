package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestLintTreeClean runs the multichecker over the whole module exactly the
// way `make lint` and CI do, so a lint failure anywhere reproduces locally
// with one command: go run ./cmd/odbglint ./...
func TestLintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run is slow")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/odbglint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("odbglint failed on %s:\n%s", root, out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Fatalf("odbglint succeeded but printed output:\n%s", s)
	}
}

// TestListAnalyzers asserts the four contract analyzers are wired in.
func TestListAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	cmd := exec.Command("go", "run", "./cmd/odbglint", "-list")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("odbglint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"detrand", "maporder", "nopanic", "snapcover"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("odbglint -list output is missing %q:\n%s", name, out)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}
