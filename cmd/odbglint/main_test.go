package main

import (
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

// TestLintTreeClean runs the multichecker over the whole module exactly the
// way `make lint` and CI do, so a lint failure anywhere reproduces locally
// with one command: go run ./cmd/odbglint ./...
func TestLintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run is slow")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/odbglint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("odbglint failed on %s:\n%s", root, out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Fatalf("odbglint succeeded but printed output:\n%s", s)
	}
}

// TestListAnalyzers asserts the contract, performance, and concurrency
// analyzers are all wired in.
func TestListAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	cmd := exec.Command("go", "run", "./cmd/odbglint", "-list")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("odbglint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"detrand", "maporder", "nopanic", "snapcover",
		"ctxflow", "errflow", "goleak", "detrand-transitive",
		"hotalloc", "hotbox", "hotdefer", "prealloc",
		"lockcheck", "guarded", "lifecycle",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("odbglint -list output is missing %q:\n%s", name, out)
		}
	}
}

// TestOnlyFlag pins the -only selector: a single analyzer runs clean over a
// package, and a typo is a hard error rather than an accidental no-op lint.
func TestOnlyFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	root := moduleRoot(t)

	cmd := exec.Command("go", "run", "./cmd/odbglint", "-only", "goleak,ctxflow", "./internal/simerr/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("odbglint -only goleak,ctxflow: %v\n%s", err, out)
	}

	// internal/sim carries //lint:allow directives for unselected analyzers
	// (detrand, goleak); running a subset must not misreport them as
	// naming unknown analyzers.
	cmd = exec.Command("go", "run", "./cmd/odbglint", "-only", "errflow", "./internal/sim/")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("odbglint -only errflow over a package with detrand allows: %v\n%s", err, out)
	}

	cmd = exec.Command("go", "run", "./cmd/odbglint", "-only", "nosuch", "./internal/simerr/...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("odbglint -only nosuch succeeded; want an unknown-analyzer error\n%s", out)
	}
	if !strings.Contains(string(out), "unknown analyzer") {
		t.Errorf("odbglint -only nosuch error does not name the problem:\n%s", out)
	}
}

// TestJSONOutput pins the -json contract: a clean run prints a well-formed
// (empty) JSON array, so CI can always upload the artifact and scripted
// consumers never special-case success.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	cmd := exec.Command("go", "run", "./cmd/odbglint",
		"-json", "-only", "lockcheck,guarded,lifecycle", "./internal/simerr/...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("odbglint -json: %v\n%s", err, out)
	}
	var findings []struct {
		File     string   `json:"file"`
		Line     int      `json:"line"`
		Analyzer string   `json:"analyzer"`
		Message  string   `json:"message"`
		Chain    []string `json:"chain"`
	}
	if jerr := json.Unmarshal(out, &findings); jerr != nil {
		t.Fatalf("odbglint -json output is not a JSON array: %v\n%s", jerr, out)
	}
	if len(findings) != 0 {
		t.Errorf("clean package produced findings: %+v", findings)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}
