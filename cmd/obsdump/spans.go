package main

import (
	"fmt"
	"io"
	"os"
	"slices"

	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/simerr"
)

// runSpans is the -spans mode: the input is span JSONL from the flight
// recorder (gcsim -spans, odbgcd -traces, or a /debug/traces scrape) rather
// than an event log. -check validates structure and parent links; otherwise
// every span is rendered followed by per-stage latency percentiles and a
// critical-path breakdown over the request spans.
func runSpans(sd *obs.Shutdown, path string, check bool, limit int, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	spans, err := span.ReadAll(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// CheckAll re-verifies every span and the ID space, and counts GC spans
	// whose parent request aged out of the dump (expected in mid-load
	// scrapes, suspicious in post-drain dumps).
	dangling, err := span.CheckAll(spans)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	requests, gcs := 0, 0
	for _, sp := range spans {
		if sp.Kind == span.KindGC {
			gcs++
		} else {
			requests++
		}
	}
	if check {
		fmt.Fprintf(stdout, "%s: ok: %d spans (%d requests, %d gc, %d dangling parents), schema v%d\n",
			path, len(spans), requests, gcs, dangling, span.SchemaVersion)
		return nil
	}

	printed := 0
	for _, sp := range spans {
		select {
		case <-sd.Draining():
			return simerr.Canceledf("interrupted after %d spans", printed)
		default:
		}
		if limit > 0 && printed >= limit {
			break
		}
		fmt.Fprintln(stdout, renderSpan(sp))
		printed++
	}
	printStageTable(stdout, spans)
	if dangling > 0 {
		fmt.Fprintf(stdout, "note: %d gc spans reference requests that aged out of this dump\n", dangling)
	}
	return nil
}

// renderSpan formats one span on a single line.
func renderSpan(sp *span.Span) string {
	if sp.Kind == span.KindGC {
		line := fmt.Sprintf("gc      %016x pause=%-6d part=%-3d reclaimed=%dB (%d objs) traced=%d",
			sp.ID, sp.Stages[span.StageService], sp.Partition, sp.ReclaimedBytes, sp.ReclaimedObjects, sp.TracedObjects)
		if sp.Parent != 0 {
			line += fmt.Sprintf(" during=%016x", sp.Parent)
		}
		if sp.QueuedBehind > 0 {
			line += fmt.Sprintf(" queued-behind=%d", sp.QueuedBehind)
		}
		if sp.Breaker != "" {
			line += " breaker=" + sp.Breaker
		}
		if sp.Outcome != span.OutcomeOK {
			line += " outcome=" + sp.Outcome
		}
		return line
	}
	line := fmt.Sprintf("request %016x sess=%-3d seq=%-4d op=%-7s %-7s dur=%-8d", sp.ID, sp.Session, sp.Seq, sp.Op, sp.Outcome, sp.Duration())
	for st := 0; st < span.NumStages; st++ {
		if sp.Stages[st] > 0 {
			line += fmt.Sprintf(" %s=%d", span.StageName(st), sp.Stages[st])
		}
	}
	if sp.Pinned {
		line += " pinned"
	}
	return line
}

// printStageTable renders per-stage latency percentiles over the request
// spans (in recorder ticks) plus, per request, which stage dominated — the
// critical path tells overloaded-queue and slow-engine stories apart at a
// glance.
func printStageTable(w io.Writer, spans []*span.Span) {
	var vals [span.NumStages][]int64
	var critical [span.NumStages]int
	requests := 0
	for _, sp := range spans {
		if sp.Kind != span.KindRequest {
			continue
		}
		requests++
		best, bestVal := -1, int64(0)
		for st := 0; st < span.NumStages; st++ {
			if v := sp.Stages[st]; v > 0 {
				vals[st] = append(vals[st], v)
				if v > bestVal {
					best, bestVal = st, v
				}
			}
		}
		if best >= 0 {
			critical[best]++
		}
	}
	if requests == 0 {
		return
	}
	fmt.Fprintf(w, "\nper-stage latency over %d request spans (ticks):\n", requests)
	fmt.Fprintf(w, "  %-8s %6s %10s %10s %10s %10s\n", "stage", "count", "p50", "p90", "p99", "max")
	for st := 0; st < span.NumStages; st++ {
		vs := vals[st]
		if len(vs) == 0 {
			continue
		}
		slices.Sort(vs)
		fmt.Fprintf(w, "  %-8s %6d %10d %10d %10d %10d\n", span.StageName(st), len(vs),
			pct(vs, 50), pct(vs, 90), pct(vs, 99), vs[len(vs)-1])
	}
	fmt.Fprintf(w, "critical path (dominant stage per request):")
	for st := 0; st < span.NumStages; st++ {
		if critical[st] > 0 {
			fmt.Fprintf(w, " %s=%d", span.StageName(st), critical[st])
		}
	}
	fmt.Fprintln(w)
}

// pct reads the p-th percentile from an already-sorted sample.
func pct(sorted []int64, p int) int64 {
	return sorted[(len(sorted)-1)*p/100]
}
