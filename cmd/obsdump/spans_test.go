package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/obs/span"
)

// writeSpanLog dumps a small flight recorder — two requests (one ok, one
// shed), a GC pause attributed to the ok request — to a temp file.
func writeSpanLog(t *testing.T) string {
	t.Helper()
	rec := span.NewRecorder(span.Config{Capacity: 16})
	okID := span.RequestID(1, 1)
	sp := rec.Start(span.KindRequest, "set", okID, 0, 100)
	sp.Session, sp.Seq = 1, 1
	sp.SetStage(span.StageDecode, 2)
	sp.SetStage(span.StageQueue, 10)
	sp.SetStage(span.StageService, 30)
	sp.SetStage(span.StageWrite, 3)
	g := rec.Start(span.KindGC, "collect", span.GCID(1), okID, 120)
	g.Partition, g.ReclaimedBytes, g.ReclaimedObjects = 3, 4096, 17
	g.SetStage(span.StageService, 9)
	rec.PinID(okID)
	rec.Finish(g, 129, span.OutcomeOK)
	rec.Finish(sp, 150, span.OutcomeOK)
	shed := rec.Start(span.KindRequest, "ping", span.RequestID(2, 1), 0, 200)
	shed.Session, shed.Seq = 2, 1
	shed.SetStage(span.StageQueue, 60)
	rec.Finish(shed, 265, span.OutcomeShed)

	path := filepath.Join(t.TempDir(), "traces.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Dump(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObsdumpSpansRender(t *testing.T) {
	path := writeSpanLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spans", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"request 0000000000100001",
		"queue=10 service=30",
		"shed",
		"pinned",
		"gc      8000000000000001 pause=9",
		"reclaimed=4096B (17 objs)",
		"during=0000000000100001",
		"per-stage latency over 2 request spans",
		"critical path (dominant stage per request): queue=1 service=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestObsdumpSpansCheck(t *testing.T) {
	path := writeSpanLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spans", "-check", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "ok: 3 spans (2 requests, 1 gc, 0 dangling parents)") {
		t.Errorf("unexpected -check verdict: %s", stdout.String())
	}

	// Corrupt span: end before start must fail the check.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	line := `{"v":1,"seq":0,"type":"span","span":{"id":1048577,"kind":"request","outcome":"ok","start":50,"end":10}}` + "\n"
	if err := os.WriteFile(bad, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spans", "-check", bad}, &stdout, &stderr); err == nil {
		t.Error("-check accepted a span with end before start")
	}

	// -spans composes with -check/-n only.
	if err := run([]string{"-spans", "-stats", path}, &stdout, &stderr); err == nil {
		t.Error("-spans -stats not rejected")
	}
}
