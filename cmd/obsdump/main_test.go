package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/obs"
)

// writeLog emits a small but representative event log to a temp file.
func writeLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	w.ObserveRunStart(obs.RunStart{Policy: "saio(10%)", Selection: "updated-pointer", Preamble: 10})
	w.ObservePhase(obs.PhaseChange{Step: 0, Label: "GenDB"})
	w.ObserveDecision(obs.Decision{Step: 40, Collected: true, DBBytes: 1000, GarbageBytes: 100})
	w.ObserveCollection(obs.Collection{Index: 1, Step: 40, Phase: "GenDB", ReclaimedBytes: 90})
	w.ObserveFault(obs.Fault{Step: 41, Op: "read", Seq: 7, Burst: true})
	w.ObserveCheckpoint(obs.CheckpointMark{Step: 50, Op: "save"})
	w.ObserveProgress(obs.Progress{Step: 1000, Collections: 1, Phase: "GenDB"})
	w.ObserveRunEnd(obs.RunEnd{Events: 1200, Collections: 1, Reclaimed: 90})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObsdumpPrettyPrint(t *testing.T) {
	path := writeLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"run_start   policy=saio(10%)",
		`phase       @0 "GenDB"`,
		"collection  #1 @40 GenDB",
		"fault       @41 read op#7 burst",
		"checkpoint  @50 save",
		"run_end     events=1200",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestObsdumpTypeFilterAndLimit(t *testing.T) {
	path := writeLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-type", "collection", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(stdout.String(), "\n"); got != 1 {
		t.Errorf("type filter printed %d lines, want 1:\n%s", got, stdout.String())
	}

	stdout.Reset()
	if err := run([]string{"-n", "2", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(stdout.String(), "\n"); got != 2 {
		t.Errorf("-n 2 printed %d lines:\n%s", got, stdout.String())
	}
}

func TestObsdumpStats(t *testing.T) {
	path := writeLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "events: 8") || !strings.Contains(out, "summary: 1200 trace events") {
		t.Errorf("stats output wrong:\n%s", out)
	}
	// One collection: no distribution lines for a single sample.
	if strings.Contains(out, "reclaimed bytes per collection") {
		t.Errorf("single-sample distribution printed:\n%s", out)
	}
}

func TestObsdumpStatsDistributions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	w.ObserveRunStart(obs.RunStart{Policy: "saga", Selection: "updated-pointer"})
	for i := 1; i <= 20; i++ {
		w.ObserveCollection(obs.Collection{
			Index: i, Step: i * 50, Phase: "GenDB",
			ReclaimedBytes: 100 * i, Interval: 50,
		})
	}
	w.ObserveRunEnd(obs.RunEnd{Events: 1000, Collections: 20})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "reclaimed bytes per collection (20 samples, mean 1050.0)") {
		t.Errorf("reclaimed distribution missing:\n%s", out)
	}
	// All intervals identical: the degenerate single-value form.
	if !strings.Contains(out, "steps between collections: 20 samples, all 50") {
		t.Errorf("interval distribution missing:\n%s", out)
	}
}

func TestObsdumpCheck(t *testing.T) {
	path := writeLog(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-check", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "ok: 8 events") {
		t.Errorf("check verdict wrong: %s", stdout.String())
	}

	// A corrupt log must fail the check.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"v":1,"seq":3,"type":"fault","fault":{"step":1,"op":"read","seq":2}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", bad}, &stdout, &stderr); err == nil {
		t.Error("corrupt log passed -check")
	}
}

func TestObsdumpErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"a", "b"}, &stdout, &stderr); err == nil {
		t.Error("two arguments accepted")
	}
	if err := run([]string{"/nonexistent.jsonl"}, &stdout, &stderr); err == nil {
		t.Error("absent file accepted")
	}
	path := writeLog(t)
	if err := run([]string{"-type", "wat", path}, &stdout, &stderr); err == nil {
		t.Error("unknown -type accepted")
	}
	if err := run([]string{"-n", "-1", path}, &stdout, &stderr); err == nil {
		t.Error("negative -n accepted")
	}
}
