// Command obsdump inspects JSONL event logs written by gcsim -events and
// experiments -events-dir: a human-readable rendering, per-type counts, and a
// strict schema/sequence check for CI.
//
// Usage:
//
//	obsdump run.jsonl                 # pretty-print every event
//	obsdump -stats run.jsonl          # per-type counts and run summary only
//	obsdump -check run.jsonl          # validate schema + sequence, print nothing
//	obsdump -type collection run.jsonl
//	obsdump -n 20 run.jsonl
//	obsdump -spans traces.jsonl       # flight-recorder spans: lines + stage table
//	obsdump -spans -check traces.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/simerr"
)

func main() {
	sd := obs.NewShutdown(context.Background())
	stop := sd.Notify()
	defer stop()
	if err := runWithShutdown(sd, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

// run executes the CLI with no signals wired; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	return runWithShutdown(obs.NewShutdown(context.Background()), args, stdout, stderr)
}

func runWithShutdown(sd *obs.Shutdown, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("obsdump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		check    = fs.Bool("check", false, "validate schema version, payloads and sequence numbers; print only a verdict")
		stats    = fs.Bool("stats", false, "print per-type event counts and the run summary instead of every event")
		typeFlag = fs.String("type", "", "print only events of this type (see -check for the list)")
		limit    = fs.Int("n", 0, "print only the first N matching events (0 = all)")
		spans    = fs.Bool("spans", false, "the input is span JSONL from the flight recorder (gcsim -spans, odbgcd -traces, /debug/traces)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: obsdump [flags] run.jsonl")
	}
	if *limit < 0 {
		return fmt.Errorf("-n must be >= 0 (got %d)", *limit)
	}
	if *spans {
		if *stats || *typeFlag != "" {
			return fmt.Errorf("-spans supports -check and -n only (span dumps always end with the stage table)")
		}
		return runSpans(sd, fs.Arg(0), *check, *limit, stdout)
	}
	if *typeFlag != "" {
		known := false
		for _, t := range obs.EventTypes() {
			if t == *typeFlag {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("unknown event type %q (have %v)", *typeFlag, obs.EventTypes())
		}
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()

	// ReadAll validates every line (schema version, exactly one payload
	// matching the type tag, contiguous sequence numbers), so -check is just
	// "did it load".
	events, err := obs.ReadAll(f)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	if *check {
		fmt.Fprintf(stdout, "%s: ok: %d events, schema v%d\n", fs.Arg(0), len(events), obs.SchemaVersion)
		return nil
	}
	if *stats {
		printStats(stdout, events)
		return nil
	}

	printed := 0
	for _, e := range events {
		// Large logs can take a while to render to a slow terminal; stop at
		// the first interrupt instead of insisting on the rest.
		select {
		case <-sd.Draining():
			return simerr.Canceledf("interrupted after %d events", printed)
		default:
		}
		if *typeFlag != "" && e.Type != *typeFlag {
			continue
		}
		if *limit > 0 && printed >= *limit {
			break
		}
		fmt.Fprintf(stdout, "%6d %s\n", e.Seq, render(e))
		printed++
	}
	return nil
}

// render formats one event on a single line.
func render(e *obs.Envelope) string {
	switch e.Type {
	case obs.TypeRunStart:
		s := *e.RunStart
		line := fmt.Sprintf("run_start   policy=%s selection=%s preamble=%d", s.Policy, s.Selection, s.Preamble)
		if s.FaultProfile != "" {
			line += fmt.Sprintf(" faults=%s seed=%d", s.FaultProfile, s.FaultSeed)
		}
		if s.Resumed > 0 {
			line += fmt.Sprintf(" resumed@%d", s.Resumed)
		}
		return line
	case obs.TypePhase:
		p := *e.Phase
		return fmt.Sprintf("phase       @%d %q collections=%d overwrites=%d", p.Step, p.Label, p.Collections, p.Overwrites)
	case obs.TypeDecision:
		d := *e.Decision
		tag := ""
		if d.Idle {
			tag = " idle"
		}
		return fmt.Sprintf("decision    @%d collected=%v%s db=%dB garbage=%dB est=%.0f target=%.0f next=%d",
			d.Step, d.Collected, tag, d.DBBytes, d.GarbageBytes, float64(d.Estimate), float64(d.Target), d.NextInterval)
	case obs.TypeCollection:
		c := *e.Collection
		return fmt.Sprintf("collection  #%d @%d %s part=%d reclaimed=%dB (%d objs) live=%dB garbage=%.3f interval=%d",
			c.Index, c.Step, c.Phase, c.Partition, c.ReclaimedBytes, c.ReclaimedObjects, c.LiveBytes, float64(c.GarbageFrac), c.Interval)
	case obs.TypeFault:
		ft := *e.Fault
		tag := ""
		if ft.Burst {
			tag = " burst"
		}
		return fmt.Sprintf("fault       @%d %s op#%d%s", ft.Step, ft.Op, ft.Seq, tag)
	case obs.TypeCheckpoint:
		c := *e.Checkpoint
		return fmt.Sprintf("checkpoint  @%d %s", c.Step, c.Op)
	case obs.TypeProgress:
		p := *e.Progress
		return fmt.Sprintf("progress    @%d collections=%d phase=%s appio=%d gcio=%d",
			p.Step, p.Collections, p.Phase, p.Clock.AppIO, p.Clock.GCIO)
	case obs.TypeRunEnd:
		r := *e.RunEnd
		return fmt.Sprintf("run_end     events=%d collections=%d gcio=%.4f garbage=%.4f reclaimed=%dB",
			r.Events, r.Collections, float64(r.GCIOFrac), float64(r.GarbageFrac), r.Reclaimed)
	default:
		// ReadAll rejects unknown types; this is unreachable on valid input.
		return e.Type
	}
}

// printStats renders per-type counts, collection-yield and interval
// distributions, and, when present, the run summary. Everything is
// accumulated in a single pass over the log: samples are appended once and
// the histogram buckets are filled once after the range is known, never
// rebuilt per event — large JSONL logs stay O(events).
func printStats(w io.Writer, events []*obs.Envelope) {
	counts := make(map[string]int)
	var end *obs.RunEnd
	var reclaimed, intervals []float64
	for _, e := range events {
		counts[e.Type]++
		switch e.Type {
		case obs.TypeRunEnd:
			end = e.RunEnd
		case obs.TypeCollection:
			c := e.Collection
			reclaimed = append(reclaimed, float64(c.ReclaimedBytes))
			if c.Interval > 0 {
				intervals = append(intervals, float64(c.Interval))
			}
		}
	}
	fmt.Fprintf(w, "events: %d\n", len(events))
	for _, t := range obs.EventTypes() {
		if counts[t] > 0 {
			fmt.Fprintf(w, "  %-11s %d\n", t, counts[t])
		}
	}
	printHistogram(w, "reclaimed bytes per collection", reclaimed)
	printHistogram(w, "steps between collections", intervals)
	if end != nil {
		fmt.Fprintf(w, "summary: %d trace events, %d collections, gc I/O %.2f%%, garbage %.2f%%, reclaimed %dB\n",
			end.Events, end.Collections, float64(end.GCIOFrac)*100, float64(end.GarbageFrac)*100, end.Reclaimed)
	}
}

// printHistogram buckets the samples over their observed range and renders
// the distribution. Fewer than two samples have no distribution to show.
func printHistogram(w io.Writer, title string, samples []float64) {
	if len(samples) < 2 {
		return
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo == hi {
		fmt.Fprintf(w, "%s: %d samples, all %.0f\n", title, len(samples), lo)
		return
	}
	n := 10
	if len(samples) < n {
		n = len(samples)
	}
	// hi is nudged up so the maximum lands in the top bucket, not overflow.
	h, err := metrics.NewHistogram(lo, hi*(1+1e-9)+1e-9, n)
	if err != nil {
		return
	}
	for _, v := range samples {
		h.Add(v)
	}
	fmt.Fprintf(w, "%s (%d samples, mean %.1f):\n%s", title, h.N(), h.Mean(), h.String())
}
