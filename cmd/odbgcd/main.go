// Command odbgcd serves the object database over TCP with the paper's
// self-adaptive GC controllers running online: client sessions create,
// link, and unlink objects against a live heap, and SAIO/SAGA decide when
// to collect from the server's own streaming statistics — no trace
// annotations, no oracle.
//
// Usage:
//
//	odbgcd -addr :7421 -policy saga -frac 0.05 -estimator fgs-hb
//	odbgcd -addr :7421 -http :8080 -queue-depth 64 -max-sessions 128
//	odbgcd -service-delay 2ms -queue-depth 4      # reproducible overload demo
//
// Robustness spine: a bounded admission queue (overflow is shed with a
// retry-after hint), per-request and idle deadlines, a circuit breaker that
// degrades the garbage estimator to a coarse fallback on repeated bad
// signals, and a two-stage SIGINT shutdown — the first signal stops
// accepting and drains in-flight sessions, the second cancels hard. The
// event log and manifest are flushed on the drain path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/server"
	"odbgc/internal/storage"
	"odbgc/internal/storage/disk"
)

func main() {
	sd := obs.NewShutdown(context.Background())
	stop := sd.Notify()
	defer stop()
	if err := runWithShutdown(sd, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "odbgcd:", err)
		os.Exit(1)
	}
}

// run executes the CLI with no signals wired; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	return runWithShutdown(obs.NewShutdown(context.Background()), args, stdout, stderr)
}

func runWithShutdown(sd *obs.Shutdown, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("odbgcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7421", "TCP address to serve the object protocol on")
		httpAddr  = fs.String("http", "", `serve /metrics, /healthz, /statusz and /debug/pprof on this address (e.g. ":8080")`)
		policy    = fs.String("policy", "saga", "rate policy: saio, saga, pi, coupled, fixed, never")
		frac      = fs.Float64("frac", 0.10, "requested fraction for saio (I/O share) or saga/pi (garbage share)")
		interval  = fs.Int("interval", 200, "fixed policy: pointer overwrites per collection")
		initialIv = fs.Uint64("initial-interval", 0, "adaptive policies: overwrites before the bootstrap collection (0 = policy default)")
		estimator = fs.String("estimator", "fgs-hb", "garbage estimator: cgs-cb, fgs-hb, fgs-window, fgs-pp (oracle unavailable: live serving has none)")
		history   = fs.Float64("history", 0.8, "estimator history factor (or window length for fgs-window)")
		fallback  = fs.String("fallback-estimator", "cgs-cb", "estimator the circuit breaker degrades to on repeated bad signals")
		tripAfter = fs.Int("breaker-trip", 5, "consecutive bad estimator signals that trip the circuit breaker")
		cooldown  = fs.Int("breaker-cooldown", 8, "estimates served by the fallback before a half-open probe")
		probes    = fs.Int("breaker-probes", 3, "consecutive good half-open probes required to close the breaker")
		selection = fs.String("selection", "updated-pointer", "partition selection: updated-pointer, hybrid, random, round-robin")
		seed      = fs.Int64("seed", 1, "seed for randomized selection policies")

		queueDepth  = fs.Int("queue-depth", 128, "admission queue bound; requests past it are shed")
		maxSessions = fs.Int("max-sessions", 64, "concurrent session bound; connections past it are shed at accept")
		idleTimeout = fs.Duration("idle-timeout", 30*time.Second, "idle sessions are reaped after this long without a request")
		reqTimeout  = fs.Duration("req-timeout", 5*time.Second, "per-request deadline, queue wait included")
		drainGrace  = fs.Duration("drain-grace", 2*time.Second, "how long draining sessions may linger after the first SIGINT")
		serviceDlay = fs.Duration("service-delay", 0, "artificial per-request service time (makes overload reproducible in demos)")

		pageSize  = fs.Int("page-size", 8192, "storage page size in bytes")
		partPages = fs.Int("pages-per-partition", 12, "pages per partition")
		bufPages  = fs.Int("buffer-pages", 12, "buffer pool capacity in pages")

		eventsOut = fs.String("events", "", "write a structured JSONL event log to this path (see cmd/obsdump)")
		manifest  = fs.String("manifest", "", "write a run provenance manifest to this path on drain")

		tracesOut = fs.String("traces", "", "dump the span flight recorder to this path on drain (and to PATH.spike on shed-rate spikes)")
		traceBuf  = fs.Int("trace-buffer", 512, "flight recorder capacity in spans per ring; 0 disables tracing entirely")

		dataDir     = fs.String("data-dir", "", "persist the heap to a crash-safe disk store in this directory (WAL + checksummed pages); with the default -fsync always, restart recovers every acknowledged write")
		fsyncMode   = fs.String("fsync", "always", "with -data-dir, WAL fsync policy: always (fsync per commit; no acknowledged write is ever lost), group (fsync every few commits; a crash can lose the last unsynced window of acknowledged writes), never (durability only at checkpoints)")
		ckptEvery   = fs.Int("checkpoint-every", 1024, "with -data-dir, checkpoint the durable store every N commits (bounds WAL replay after a crash)")
		recoverOnly = fs.Bool("recover", false, "with -data-dir, run crash recovery, print what it rebuilt, and exit without serving")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: odbgcd [flags] (no positional arguments)")
	}
	if *frac < 0 || *frac > 1 {
		return fmt.Errorf("-frac must be in [0, 1] (got %g)", *frac)
	}
	if *estimator == "oracle" || *fallback == "oracle" {
		return fmt.Errorf("the oracle estimator needs trace annotations; a live server has none (use cgs-cb or fgs-hb)")
	}

	pol, breaker, err := buildPolicy(*policy, *frac, *interval, *initialIv, *estimator, *fallback, *history,
		server.BreakerConfig{TripAfter: *tripAfter, Cooldown: *cooldown, HalfOpenProbes: *probes})
	if err != nil {
		return err
	}
	sel, err := gc.NewSelectionPolicy(*selection, *seed)
	if err != nil {
		return err
	}
	mgr, err := storage.NewManager(storage.Config{PageSize: *pageSize, PagesPerPartition: *partPages, BufferPages: *bufPages})
	if err != nil {
		return err
	}
	heap := gc.NewHeap(objstore.NewStore(), mgr)

	// Durability: open (running crash recovery), rebuild the live heap from
	// the committed state, and only then attach the WAL so new mutations
	// are logged. The recovery wall time and replay counts surface on
	// /metrics below and in the boot banner here.
	var durable *disk.Store
	var recInfo *disk.RecoveryInfo
	var recoveryMs float64
	if *recoverOnly && *dataDir == "" {
		return fmt.Errorf("-recover requires -data-dir")
	}
	if *dataDir != "" {
		fpol, err := disk.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		start := time.Now()
		st, info, err := disk.Open(disk.Options{FS: disk.OSFS{Dir: *dataDir}, Fsync: fpol})
		if err != nil {
			return fmt.Errorf("opening durable store in %s: %w", *dataDir, err)
		}
		if err := server.RebuildHeap(heap, st); err != nil {
			_ = st.Close()
			return err
		}
		recoveryMs = float64(time.Since(start)) / float64(time.Millisecond)
		recInfo = info
		durable = st
		fmt.Fprintf(stdout, "recovered %d objects from %s in %.1fms (checkpoint seq %d, %d batches / %d records replayed, torn tail: %v)\n",
			info.Objects, *dataDir, recoveryMs, info.CheckpointSeq, info.BatchesReplayed, info.RecordsReplayed, info.TornTail)
		if *recoverOnly {
			fmt.Fprintf(stdout, "state digest: %x\n", info.Digest)
			return st.Close()
		}
		defer func() {
			if durable != nil {
				_ = durable.Close()
			}
		}()
		heap.SetDurable(st)
	}

	// Observability: the live registry always exists (the serving metrics
	// need it); HTTP and the event log are opt-in.
	live := obs.NewLive()
	observers := []obs.Observer{live}
	var events *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		events = obs.NewJSONLWriter(f)
		observers = append(observers, events)
	}
	closeEvents := func() error {
		if events == nil {
			return nil
		}
		err := events.Close()
		events = nil
		if err != nil {
			return fmt.Errorf("writing event log %s: %w", *eventsOut, err)
		}
		return nil
	}
	defer func() { _ = closeEvents() }()
	// The flight recorder retains the tail worth keeping (shed, errored,
	// expired, slowest spans, GC pauses); -trace-buffer 0 hands the serving
	// stack a nil recorder, whose fast path is free.
	var rec *span.Recorder
	if *traceBuf > 0 {
		var spikeMu sync.Mutex
		rec = span.NewRecorder(span.Config{
			Capacity: *traceBuf,
			OnSpike: func(shed, window int) {
				fmt.Fprintf(stderr, "odbgcd: shed-rate spike: %d of last %d requests shed\n", shed, window)
				if *tracesOut == "" {
					return
				}
				spikeMu.Lock()
				defer spikeMu.Unlock()
				if err := dumpTraces(rec, *tracesOut+".spike"); err != nil {
					fmt.Fprintf(stderr, "odbgcd: spike trace dump: %v\n", err)
				}
			},
		})
	}
	if *httpAddr != "" {
		var routes []obs.Route
		if rec != nil {
			routes = append(routes, obs.Route{Pattern: "/debug/traces", Handler: rec})
		}
		bound, stopServe, err := obs.ListenAndServe(*httpAddr, live, routes...)
		if err != nil {
			return fmt.Errorf("starting metrics server: %w", err)
		}
		defer stopServe()
		fmt.Fprintf(stdout, "serving metrics on http://%s/metrics\n", bound)
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-sd.Draining():
			live.SetDraining(true)
		case <-watchDone:
		}
	}()

	m := server.NewMetrics(live.Registry())
	engCfg := server.EngineConfig{
		Policy:          pol,
		Selection:       sel,
		QueueDepth:      *queueDepth,
		ServiceDelay:    *serviceDlay,
		Breaker:         breaker,
		Metrics:         m,
		Observer:        obs.NewMulti(observers...),
		Recorder:        rec,
		CheckpointEvery: *ckptEvery,
	}
	if durable != nil {
		engCfg.Durable = durable
		m.RecoveryObserve(recInfo.RecordsReplayed, recInfo.BatchesReplayed, recInfo.Objects, recoveryMs, recInfo.TornTail)
	}
	eng, err := server.NewEngine(heap, engCfg)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Addr:           *addr,
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idleTimeout,
		RequestTimeout: *reqTimeout,
		DrainGrace:     *drainGrace,
	}, eng, m)
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving objects on %s (policy %s, selection %s, queue %d, sessions %d)\n",
		bound, pol.Name(), sel.Name(), eng.QueueDepth(), *maxSessions)

	serveErr := srv.Serve(sd.Context(), sd.Draining())

	// Drain path: the engine loop has exited, so its state is safe to read.
	st := eng.Snapshot()
	fmt.Fprintf(stdout, "drained: %d requests, %d collections, %d bytes reclaimed, %d objects live\n",
		eng.Requests(), st.Collections, st.ReclaimedBytes, st.Objects)
	if durable != nil {
		// Seal the store: any batch still staged (a request whose commit
		// failed transiently) goes out, then a final checkpoint makes the
		// next boot replay-free, then the handles close.
		if err := durable.Commit(); err != nil {
			return fmt.Errorf("final durable commit: %w", err)
		}
		if err := durable.Checkpoint(); err != nil {
			return fmt.Errorf("final durable checkpoint: %w", err)
		}
		dst := durable.Stats()
		fmt.Fprintf(stdout, "durable:  %d commits, %d checkpoints, %d objects in %d pages (seq %d)\n",
			dst.Commits, dst.Checkpoints, dst.Objects, dst.PageCount, dst.Seq)
		err := durable.Close()
		durable = nil
		if err != nil {
			return fmt.Errorf("closing durable store: %w", err)
		}
	}
	if breaker != nil {
		fmt.Fprintf(stdout, "breaker:  %s (%d trips, %d recoveries, %d bad signals)\n",
			breaker.State(), breaker.Trips(), breaker.Recoveries(), breaker.BadSignals())
	}
	if err := closeEvents(); err != nil {
		return err
	}
	if *tracesOut != "" && rec != nil {
		if err := dumpTraces(rec, *tracesOut); err != nil {
			return fmt.Errorf("writing trace dump %s: %w", *tracesOut, err)
		}
		rst := rec.Stats()
		fmt.Fprintf(stdout, "traces:   %s (%d finished, %d retained, %d shed, %d gc spans)\n",
			*tracesOut, rst.Finished, rst.Retained, rst.Shed, rst.GCSpans)
	}
	if *manifest != "" {
		man := &obs.Manifest{
			Tool:      "odbgcd",
			Config:    flagKVs(fs),
			Seed:      *seed,
			Policy:    pol.Name(),
			Selection: sel.Name(),
		}
		if *eventsOut != "" {
			if err := man.AddArtifact(*eventsOut); err != nil {
				return err
			}
		}
		if *tracesOut != "" && rec != nil {
			if err := man.AddArtifact(*tracesOut); err != nil {
				return err
			}
		}
		total := st.AppIO + st.GCIO
		sum := obs.Summary{
			Events:      int(eng.Requests()),
			Collections: int(st.Collections),
			Reclaimed:   st.ReclaimedBytes,
			TotalIO:     total,
		}
		if total > 0 {
			sum.GCIOFrac = obs.Float(float64(st.GCIO) / float64(total))
		}
		if err := man.SetSummary(sum); err != nil {
			return err
		}
		if err := man.Write(*manifest); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "manifest: %s (summary %s)\n", *manifest, man.SummarySHA256[:12])
	}
	return serveErr
}

// buildPolicy constructs the requested rate policy. Estimator-backed
// policies get their estimator wrapped in the circuit breaker (primary =
// the requested estimator, fallback = the coarse one), and the breaker is
// returned so the engine can export its state.
func buildPolicy(name string, frac float64, interval int, initialIv uint64, primary, fallback string, history float64, bcfg server.BreakerConfig) (core.RatePolicy, *server.Breaker, error) {
	newEst := func() (core.Estimator, *server.Breaker, error) {
		p, err := core.NewEstimator(primary, history)
		if err != nil {
			return nil, nil, err
		}
		f, err := core.NewEstimator(fallback, history)
		if err != nil {
			return nil, nil, err
		}
		b, err := server.NewBreaker(bcfg, p, f)
		if err != nil {
			return nil, nil, err
		}
		return b, b, nil
	}
	switch name {
	case "saio":
		pol, err := core.NewSAIO(core.SAIOConfig{Frac: frac, InitialInterval: initialIv})
		return pol, nil, err
	case "saga":
		est, b, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: frac, InitialInterval: initialIv}, est)
		return pol, b, err
	case "pi":
		est, b, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewPIController(core.PIConfig{Frac: frac, InitialInterval: initialIv}, est)
		return pol, b, err
	case "coupled":
		est, b, err := newEst()
		if err != nil {
			return nil, nil, err
		}
		pol, err := core.NewCoupled(core.CoupledConfig{IOFrac: frac, GarbFrac: frac, InitialInterval: initialIv}, est)
		return pol, b, err
	case "fixed":
		pol, err := core.NewFixedRate(interval)
		return pol, nil, err
	case "never":
		return core.NeverCollect{}, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown policy %q (have saio, saga, pi, coupled, fixed, never)", name)
	}
}

// dumpTraces writes the recorder's current snapshot as span JSONL to path.
func dumpTraces(rec *span.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := rec.Dump(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// flagKVs snapshots every flag's effective value for the provenance manifest.
func flagKVs(fs *flag.FlagSet) []obs.KV {
	m := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		m[f.Name] = f.Value.String()
	})
	return obs.ConfigKVs(m)
}
