package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"odbgc/internal/obs"
	"odbgc/internal/server"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown policy", []string{"-policy", "bogus"}, "unknown policy"},
		{"oracle estimator", []string{"-estimator", "oracle"}, "oracle"},
		{"oracle fallback", []string{"-fallback-estimator", "oracle"}, "oracle"},
		{"frac range", []string{"-frac", "1.5"}, "-frac"},
		{"positional args", []string{"stray"}, "usage"},
		{"bad selection", []string{"-selection", "bogus"}, "selection"},
		{"bad geometry", []string{"-page-size", "-1"}, "PageSize"},
		{"bad queue", []string{"-queue-depth", "-5"}, "queue depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run(tc.args, &out, &errb)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// syncBuffer lets the test read the daemon's stdout while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var boundRE = regexp.MustCompile(`serving objects on (\S+)`)

// TestDaemonServesAndDrains boots the daemon on an ephemeral port, drives
// real traffic through it, interrupts it, and checks the drain summary and
// manifest — the CLI equivalent of the two-stage shutdown test.
func TestDaemonServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.json")
	events := filepath.Join(dir, "events.jsonl")

	sd := obs.NewShutdown(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runWithShutdown(sd, []string{
			"-addr", "127.0.0.1:0",
			"-policy", "fixed", "-interval", "4",
			"-page-size", "1024", "-pages-per-partition", "4", "-buffer-pages", "8",
			"-manifest", manifest, "-events", events,
		}, &out, io.Discard)
	}()

	// Wait for the bound address to appear on stdout.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := boundRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	cli, err := server.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hub, err := cli.Create(ctx, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		child, err := cli.Create(ctx, 128, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Set(ctx, hub, 0, child); err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if _, err := cli.Do(ctx, server.Request{Op: server.OpUnroot, OID: prev}); err != nil {
				t.Fatal(err)
			}
		}
		prev = child
	}
	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Collections == 0 {
		t.Error("daemon ran no online collections under churn at fixed(4)")
	}

	// First interrupt: drain. The daemon must exit cleanly on its own.
	sd.Interrupt()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained daemon returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after interrupt")
	}
	if !strings.Contains(out.String(), "drained:") {
		t.Errorf("no drain summary in output:\n%s", out.String())
	}
	for _, p := range []string{manifest, events} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestBuildPolicyWiresBreaker(t *testing.T) {
	bcfg := server.BreakerConfig{TripAfter: 2, Cooldown: 2, HalfOpenProbes: 1}
	pol, b, err := buildPolicy("saga", 0.1, 0, 0, "fgs-hb", "cgs-cb", 0.8, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("saga got no breaker")
	}
	if pol.Name() == "" {
		t.Fatal("policy has no name")
	}
	if !strings.Contains(b.Name(), "fgs-hb") || !strings.Contains(b.Name(), "cgs-cb") {
		t.Fatalf("breaker name %q does not show primary->fallback", b.Name())
	}
	// Policies without estimators get no breaker.
	if _, b, err := buildPolicy("saio", 0.1, 0, 0, "fgs-hb", "cgs-cb", 0.8, bcfg); err != nil || b != nil {
		t.Fatalf("saio: breaker %v, err %v; want none", b, err)
	}
	if _, b, err := buildPolicy("fixed", 0, 100, 0, "fgs-hb", "cgs-cb", 0.8, bcfg); err != nil || b != nil {
		t.Fatalf("fixed: breaker %v, err %v; want none", b, err)
	}
}
