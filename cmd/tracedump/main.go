// Command tracedump inspects trace files written by oo7gen: summary
// statistics, phase boundaries, event listing, and full validation.
//
// Usage:
//
//	tracedump [-stats] [-phases] [-events] [-validate] [-n 20] trace.odbt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"odbgc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracedump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		stats    = fs.Bool("stats", true, "print summary statistics")
		phases   = fs.Bool("phases", false, "print phase boundaries")
		events   = fs.Bool("events", false, "print events")
		validate = fs.Bool("validate", false, "replay and validate the trace")
		limit    = fs.Int("n", 0, "with -events, print only the first N events (0 = all)")
		fromJSON = fs.Bool("json", false, "input is JSON lines rather than binary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracedump [flags] trace.odbt")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()

	var tr *trace.Trace
	if *fromJSON {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.ReadAll(f)
	}
	if err != nil {
		return err
	}

	if *stats {
		s := trace.ComputeStats(tr)
		fmt.Fprintf(stdout, "events:            %d\n", s.Events)
		fmt.Fprintf(stdout, "creates:           %d (%d bytes allocated)\n", s.Creates, s.CreatedBytes)
		fmt.Fprintf(stdout, "accesses:          %d\n", s.Accesses)
		fmt.Fprintf(stdout, "updates:           %d\n", s.Updates)
		fmt.Fprintf(stdout, "overwrites:        %d (+%d init stores)\n", s.Overwrites, s.InitStores)
		fmt.Fprintf(stdout, "idle ticks:        %d\n", s.IdleTicks)
		fmt.Fprintf(stdout, "garbage:           %d objects, %d bytes\n", s.GarbageObjects, s.GarbageBytes)
		fmt.Fprintf(stdout, "garbage/overwrite: %.1f bytes\n", s.BytesPerOverwrite)
		fmt.Fprintf(stdout, "phases:            %v\n", s.Phases)
	}

	if *phases {
		for i := range tr.Events {
			if e := &tr.Events[i]; e.Kind == trace.KindPhase {
				fmt.Fprintf(stdout, "event %8d: phase %s\n", i, e.Label)
			}
		}
	}

	if *events {
		n := len(tr.Events)
		if *limit > 0 && *limit < n {
			n = *limit
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(stdout, "%8d  %s\n", i, tr.Events[i].String())
		}
	}

	if *validate {
		if err := trace.Validate(tr); err != nil {
			return fmt.Errorf("invalid trace: %w", err)
		}
		fmt.Fprintln(stdout, "trace is valid")
	}
	return nil
}
