package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

// writeTrace materializes a small OO7 trace for the tool to read.
func writeTrace(t *testing.T) string {
	t.Helper()
	p := oo7.SmallPrime(3)
	p.NumCompPerModule = 10
	p.NumAssmLevels = 3
	tr, err := oo7.FullTrace(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.odbt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteAll(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDumpStatsAndValidate(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-validate", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"events:", "overwrites:", "garbage:", "phases:", "trace is valid"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpPhasesAndEvents(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats=false", "-phases", "-events", "-n", "3", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "phase GenDB") {
		t.Errorf("phase listing missing:\n%s", out)
	}
	if !strings.Contains(out, "create oid:1") {
		t.Errorf("event listing missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines > 12 {
		t.Errorf("-n 3 not honored: %d lines", lines)
	}
}

func TestDumpErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.odbt")}, &stdout, &stderr); err == nil {
		t.Error("absent file accepted")
	}
	// A non-trace file must be rejected.
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{junk}, &stdout, &stderr); err == nil {
		t.Error("junk file accepted")
	}
}
