#!/usr/bin/env bash
# Overload smoke test for the serving stack: odbgcd (built with -race) is
# driven by an odbgload chaos burst at several times its admission capacity,
# /metrics must show load shedding, and a SIGINT mid-load must drain the
# server cleanly — exit 0, drain summary printed, manifest flushed.
#
# Usage: scripts/server_smoke.sh [workdir]   (defaults to a fresh mktemp -d)
set -euo pipefail

cd "$(dirname "$0")/.."
work=${1:-$(mktemp -d)}
mkdir -p "$work"
echo "server-smoke: working under $work"

go build -race -o "$work/odbgcd" ./cmd/odbgcd
go build -race -o "$work/odbgload" ./cmd/odbgload

addr=127.0.0.1:9471
http=127.0.0.1:9472

# A deliberately small server: queue of 4 with 5ms service time caps
# admission near 200 req/s, so an 800 req/s burst is ~4x capacity.
"$work/odbgcd" -addr "$addr" -http "$http" \
  -policy saga -frac 0.10 -initial-interval 20 -estimator fgs-hb -fallback-estimator cgs-cb \
  -queue-depth 4 -service-delay 5ms -max-sessions 32 \
  -page-size 1024 -pages-per-partition 4 -buffer-pages 8 \
  -data-dir "$work/data" -fsync group \
  -manifest "$work/run.manifest.json" -events "$work/events.jsonl" \
  -traces "$work/traces.jsonl" -trace-buffer 512 \
  >"$work/daemon.out" 2>&1 &
daemon=$!

for _ in $(seq 1 100); do
  curl -fsS "http://$http/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$daemon" 2>/dev/null; then
    echo "server-smoke: daemon died on startup" >&2
    cat "$work/daemon.out" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$http/healthz"
echo "server-smoke: daemon healthy on $addr"

"$work/odbgload" -addr "$addr" -rate 800 -duration 10s -workers 8 \
  -net-profile net-chaos -seed 7 >"$work/load.json" 2>"$work/load.err" &
load=$!

# Mid-burst: the server must be shedding, with sessions active.
sleep 2
curl -fsS "http://$http/metrics" -o "$work/metrics.txt"
grep -m 20 '^odbgc_server_' "$work/metrics.txt"
grep -Eq '^odbgc_server_shed_total [1-9]' "$work/metrics.txt"
grep -q '^odbgc_server_sessions_active ' "$work/metrics.txt"
grep -Eq '^odbgc_server_requests_total [1-9]' "$work/metrics.txt"
echo "server-smoke: shedding confirmed under 4x overload"

# The per-stage latency histograms are exposed, with span-ID exemplars.
grep -q '^odbgc_server_stage_queue_wait_ms_bucket' "$work/metrics.txt"
grep -q '^odbgc_server_stage_service_ms_bucket' "$work/metrics.txt"
grep -q 'span_id="' "$work/metrics.txt"
echo "server-smoke: per-stage histograms and exemplars on /metrics"

# Scrape the flight recorder live, mid-overload: retained spans must
# include shed requests with stage timings, and the dump must hold up
# under the span checker (dangling parents are expected mid-load).
curl -fsS "http://$http/debug/traces" -o "$work/traces_live.jsonl"
test -s "$work/traces_live.jsonl"
grep -q '"outcome":"shed"' "$work/traces_live.jsonl"
grep -q '"stages"' "$work/traces_live.jsonl"
go run ./cmd/obsdump -spans -check "$work/traces_live.jsonl"
echo "server-smoke: live /debug/traces scrape holds shed spans"

# Wait for the first online collection before draining, so the trace
# dump is guaranteed to carry a GC pause span. The first collection
# lands a few hundred admitted requests in; the load runs long enough
# that this resolves well before the burst ends.
for _ in $(seq 1 35); do
  curl -fsS "http://$http/metrics" -o "$work/metrics_gc.txt" || true
  grep -Eq '^odbgc_sim_collections_total [1-9]' "$work/metrics_gc.txt" && break
  sleep 0.2
done
grep -Eq '^odbgc_sim_collections_total [1-9]' "$work/metrics_gc.txt" || {
  echo "server-smoke: no online collection before the drain point" >&2
  exit 1
}

# SIGINT mid-load: stage-1 drain. The daemon must exit 0 on its own (a
# data race would fail the -race build with a nonzero exit).
kill -INT "$daemon"
if ! wait "$daemon"; then
  echo "server-smoke: daemon exited nonzero after SIGINT" >&2
  cat "$work/daemon.out" >&2
  exit 1
fi
grep -q '^drained:' "$work/daemon.out"
echo "server-smoke: daemon drained cleanly mid-load"

wait "$load" || {
  echo "server-smoke: load generator failed" >&2
  cat "$work/load.err" >&2
  exit 1
}

# The manifest, event log, and trace dump were flushed on the drain path.
test -s "$work/run.manifest.json"
test -s "$work/events.jsonl"
grep -q '"summary_sha256"' "$work/run.manifest.json" || grep -q '"sha256"' "$work/run.manifest.json"
test -s "$work/traces.jsonl"
grep -q '"outcome":"shed"' "$work/traces.jsonl"
go run ./cmd/obsdump -spans -check "$work/traces.jsonl"
if ! go run ./cmd/obsdump -spans -check "$work/traces.jsonl" | grep -q ' 0 dangling parents'; then
  echo "server-smoke: post-drain trace dump has dangling GC parents" >&2
  exit 1
fi
grep -q '"kind":"gc"' "$work/traces.jsonl" || {
  echo "server-smoke: no GC pause spans in the trace dump" >&2
  exit 1
}
grep -Eq '"parent":[1-9][0-9]*,"kind":"gc"' "$work/traces.jsonl" || {
  echo "server-smoke: GC spans present but none attributed to a request" >&2
  exit 1
}
echo "server-smoke: GC pause spans attributed to overlapping requests"
echo "server-smoke: drain-path trace dump validates (obsdump -spans -check)"

# Restart phase: the drained daemon checkpointed its durable store; a
# fresh boot on the same data dir must recover the surviving objects and
# replay nothing (the final checkpoint made the WAL empty).
grep -q '^durable:' "$work/daemon.out"
"$work/odbgcd" -data-dir "$work/data" -recover >"$work/recover.out"
grep -Eq '^recovered [1-9][0-9]* objects' "$work/recover.out"
grep -q ' 0 batches / 0 records replayed' "$work/recover.out"
echo "server-smoke: post-drain restart recovers the heap replay-free"

echo "server-smoke: load report:"
cat "$work/load.json"
echo "server-smoke: daemon summary:"
cat "$work/daemon.out"
