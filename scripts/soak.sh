#!/usr/bin/env bash
# Soak test for the cancellation-aware batch engine: a chaos-profile
# experiments sweep runs under the race detector, is interrupted with SIGINT
# as soon as its first per-run checkpoint lands, and is then resumed from the
# same -checkpoint-dir. The resumed sweep must produce a final CSV and
# manifest digests byte-identical to an uninterrupted reference sweep.
#
# Usage: scripts/soak.sh [workdir]   (workdir defaults to a fresh mktemp -d)
set -euo pipefail

cd "$(dirname "$0")/.."
work=${1:-$(mktemp -d)}
mkdir -p "$work"
echo "soak: working under $work"

go build -race -o "$work/experiments" ./cmd/experiments

# The sweep: fig4 (eight sequential batches) under the full fault profile,
# with the supervisor exercised end to end — bounded parallelism, transient
# retries, and a generous per-run deadline that a healthy run never hits.
args=(-run fig4 -runs 2 -fault-profile everything -fault-seed 11
  -parallel 2 -retries 2 -run-timeout 120s)

echo "soak: reference sweep (uninterrupted)"
"$work/experiments" "${args[@]}" \
  -csvdir "$work/ref" -manifest-dir "$work/refman" >"$work/ref.out"

echo "soak: interrupted sweep (SIGINT after the first checkpoint lands)"
resume=(-checkpoint-dir "$work/ckpt" -csvdir "$work/got" -manifest-dir "$work/gotman")
"$work/experiments" "${args[@]}" "${resume[@]}" >"$work/interrupt.out" 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  if compgen -G "$work/ckpt/*/run-*.gob" >/dev/null; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "soak: sweep exited before any checkpoint appeared" >&2
    cat "$work/interrupt.out" >&2
    exit 1
  fi
  sleep 0.1
done
kill -INT "$pid"
if wait "$pid"; then
  echo "soak: interrupted sweep exited 0; expected a canceled error" >&2
  cat "$work/interrupt.out" >&2
  exit 1
fi
if ! grep -q "interrupted during" "$work/interrupt.out"; then
  echo "soak: no resume hint in the interrupted sweep's output" >&2
  cat "$work/interrupt.out" >&2
  exit 1
fi
echo "soak: drained with $(ls "$work"/ckpt/*/run-*.gob | wc -l) per-run checkpoints flushed"

echo "soak: resuming from $work/ckpt"
"$work/experiments" "${args[@]}" "${resume[@]}" >"$work/resume.out"

cmp "$work/ref/fig4.csv" "$work/got/fig4.csv"
grep -o '"sha256": "[0-9a-f]*"' "$work/refman/fig4.manifest.json" | sort >"$work/ref.digests"
grep -o '"sha256": "[0-9a-f]*"' "$work/gotman/fig4.manifest.json" | sort >"$work/got.digests"
cmp "$work/ref.digests" "$work/got.digests"
echo "soak: resumed sweep is byte-identical to the uninterrupted reference"
