#!/usr/bin/env bash
# Crash drill for the durable storage backend, in two acts:
#
#  1. Deterministic crash-point sweep (unit level, under -race): kill the
#     store at every journaled filesystem operation — and every torn
#     variant of every WAL write — and prove recovery loses no committed
#     batch, resurrects no reclaimed object, and is byte-deterministic.
#  2. Live SIGKILL drill: odbgcd (built -race) with -data-dir is killed
#     with SIGKILL mid-overload; offline recovery (-recover) must be
#     deterministic and nonempty; the daemon restarts on the same data
#     dir, exposes recovery counters on /metrics, serves fresh load
#     error-free, and drains cleanly with a final checkpoint.
#
# Usage: scripts/crash_drill.sh [workdir]   (defaults to a fresh mktemp -d)
set -euo pipefail

cd "$(dirname "$0")/.."
work=${1:-$(mktemp -d)}
mkdir -p "$work"
echo "crash-drill: working under $work"

echo "crash-drill: act 1 — deterministic crash-point sweep under -race"
go test -race -count=1 -v -run 'TestCrashPointSweep|TestRecordIsDeterministic' \
  ./internal/storage/disk/crashtest/ | grep -E 'swept|--- (PASS|FAIL)|^(ok|FAIL)'

go build -race -o "$work/odbgcd" ./cmd/odbgcd
go build -race -o "$work/odbgload" ./cmd/odbgload

addr=127.0.0.1:9481
http=127.0.0.1:9482
data="$work/data"
daemon=

start_daemon() {
  "$work/odbgcd" -addr "$addr" -http "$http" \
    -data-dir "$data" -fsync group -checkpoint-every 256 \
    -policy saga -frac 0.10 -initial-interval 20 \
    -queue-depth 64 -max-sessions 32 \
    >"$1" 2>&1 &
  daemon=$!
  for _ in $(seq 1 100); do
    curl -fsS "http://$http/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$daemon" 2>/dev/null; then
      echo "crash-drill: daemon died on startup" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.2
  done
}

echo "crash-drill: act 2 — SIGKILL mid-load, recover offline, restart"
start_daemon "$work/daemon1.out"
"$work/odbgload" -addr "$addr" -rate 600 -duration 10s -workers 8 -seed 7 \
  >"$work/load1.json" 2>"$work/load1.err" &
load=$!
sleep 3
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
# The generator sees connection resets after the kill; that is the point.
wait "$load" 2>/dev/null || true
echo "crash-drill: daemon SIGKILLed mid-load"

# Offline recovery: deterministic (two runs, identical digest) and
# nonempty (the load generator committed real objects before the kill).
"$work/odbgcd" -data-dir "$data" -recover >"$work/recover1.out"
"$work/odbgcd" -data-dir "$data" -recover >"$work/recover2.out"
grep '^recovered ' "$work/recover1.out"
grep '^state digest:' "$work/recover1.out"
cmp <(grep '^state digest:' "$work/recover1.out") \
    <(grep '^state digest:' "$work/recover2.out")
grep -Eq '^recovered [1-9][0-9]* objects' "$work/recover1.out"
echo "crash-drill: offline recovery deterministic and nonempty"

start_daemon "$work/daemon2.out"
grep -Eq '^recovered [1-9][0-9]* objects' "$work/daemon2.out"
curl -fsS "http://$http/metrics" -o "$work/metrics.txt"
grep -Eq '^odbgc_server_recovery_objects [1-9]' "$work/metrics.txt"
grep -q '^odbgc_server_recovery_ms ' "$work/metrics.txt"
grep -q '^odbgc_server_recovery_records_replayed ' "$work/metrics.txt"
grep -q '^odbgc_server_recovery_batches_replayed ' "$work/metrics.txt"
echo "crash-drill: restart recovered the kill site; counters on /metrics"

# The restarted server must serve real load on the recovered heap.
"$work/odbgload" -addr "$addr" -rate 300 -duration 3s -workers 4 -seed 9 \
  >"$work/load2.json" 2>"$work/load2.err"
grep -q '"errors": 0' "$work/load2.json"
echo "crash-drill: post-recovery load served error-free"

kill -INT "$daemon"
if ! wait "$daemon"; then
  echo "crash-drill: daemon exited nonzero after SIGINT" >&2
  cat "$work/daemon2.out" >&2
  exit 1
fi
grep -q '^drained:' "$work/daemon2.out"
grep -q '^durable:' "$work/daemon2.out"
echo "crash-drill: restarted daemon drained cleanly with a final checkpoint"

echo "crash-drill: daemon summary:"
cat "$work/daemon2.out"
