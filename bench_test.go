package odbgc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations over the design choices called out in
// DESIGN.md. Each paper benchmark runs a reduced-scale version of the
// corresponding experiment (fewer seeded runs than cmd/experiments) and
// reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a quick reproduction pass. Full-methodology regeneration
// (10 runs per data point, all sweeps) is `go run ./cmd/experiments`.

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/experiments"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/oo7"
	"odbgc/internal/server"
	"odbgc/internal/sim"
	"odbgc/internal/storage"
	"odbgc/internal/storage/disk"
	"odbgc/internal/trace"
)

// benchOpts is the reduced methodology for benchmarks.
var benchOpts = experiments.Options{Runs: 2}

// benchTrace caches one OO7 trace per connectivity across benchmarks.
var benchTraces = map[int]*trace.Trace{}

func getTrace(b *testing.B, conn int) *trace.Trace {
	b.Helper()
	if tr, ok := benchTraces[conn]; ok {
		return tr
	}
	tr, err := oo7.FullTrace(oo7.SmallPrime(conn), 1)
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[conn] = tr
	return tr
}

// BenchmarkTable1DatabaseBuild regenerates Table 1: building the OO7 Small'
// database and deriving its structure statistics.
func BenchmarkTable1DatabaseBuild(b *testing.B) {
	var bytesMB float64
	for i := 0; i < b.N; i++ {
		g, err := oo7.NewGenerator(oo7.SmallPrime(3), 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.GenDB(); err != nil {
			b.Fatal(err)
		}
		bytesMB = float64(g.Info().Bytes) / (1 << 20)
	}
	b.ReportMetric(bytesMB, "db-MB")
}

// BenchmarkFig1FixedRateSweep regenerates Figure 1: the fixed-rate
// time/space tradeoff (total I/O and garbage collected vs collection rate).
func BenchmarkFig1FixedRateSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		io := rep.Series[0].Points
		ratio = io[0].Y / io[len(io)-1].Y // I/O cost of rate 50 vs rate 800
	}
	b.ReportMetric(ratio, "io50/io800")
}

// BenchmarkFig2PhaseTrace regenerates Figure 2: the four-phase application
// trace and its per-phase event profile.
func BenchmarkFig2PhaseTrace(b *testing.B) {
	var events float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		events = float64(len(rep.Table.Rows))
	}
	b.ReportMetric(events, "phases")
}

// BenchmarkFig4SAIOAccuracy regenerates Figure 4: SAIO requested-vs-achieved
// I/O percentage. Reports the mean absolute error in percentage points.
func BenchmarkFig4SAIOAccuracy(b *testing.B) {
	var mae float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		mae = meanAbsErr(rep.Series[0].Points)
	}
	b.ReportMetric(mae, "mae-pct-points")
}

// BenchmarkFig5SAGAAccuracy regenerates Figure 5: SAGA requested-vs-achieved
// garbage percentage for all three estimators. Reports FGS/HB's error.
func BenchmarkFig5SAGAAccuracy(b *testing.B) {
	var fgsMAE float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range rep.Series {
			if s.Name == "achieved_fgs-hb" {
				fgsMAE = meanAbsErr(s.Points)
			}
		}
	}
	b.ReportMetric(fgsMAE, "fgs-mae-pct-points")
}

// BenchmarkFig6Estimators regenerates Figure 6: the time-varying
// target/actual/estimated garbage series for CGS/CB and FGS/HB.
func BenchmarkFig6Estimators(b *testing.B) {
	var series float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		series = float64(len(rep.Series))
	}
	b.ReportMetric(series, "series")
}

// BenchmarkFig7HistoryStudy regenerates Figure 7: the FGS/HB history
// parameter study (a) and the rate/yield/garbage time series (b).
func BenchmarkFig7HistoryStudy(b *testing.B) {
	var colls float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts)
		if _, err := r.Fig7a(context.Background()); err != nil {
			b.Fatal(err)
		}
		rep, err := r.Fig7b(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		colls = float64(rep.Series[0].Len())
	}
	b.ReportMetric(colls, "collections")
}

// BenchmarkFig8Connectivity regenerates Figure 8: policy accuracy at
// connectivities 6 and 9.
func BenchmarkFig8Connectivity(b *testing.B) {
	var rows float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.NewRunner(benchOpts).Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rows = float64(len(rep.Table.Rows))
	}
	b.ReportMetric(rows, "data-points")
}

// meanAbsErr averages |achieved − requested| over a requested-vs-achieved
// series (both in percentage points).
func meanAbsErr(pts []metrics.Point) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, p := range pts {
		sum += math.Abs(p.Y - p.X)
	}
	return sum / float64(len(pts))
}

// --- ablation benchmarks over DESIGN.md's design choices ---------------------

// BenchmarkAblationSelectionPolicy compares partition-selection policies at
// a fixed collection rate: UPDATEDPOINTER vs round-robin vs random vs the
// oracle upper bound. Reports reclaimed megabytes for the policy under test.
func BenchmarkAblationSelectionPolicy(b *testing.B) {
	tr := getTrace(b, 3)
	for _, selName := range []string{"updated-pointer", "hybrid", "round-robin", "random", "oracle-max-garbage"} {
		b.Run(selName, func(b *testing.B) {
			var reclaimedMB float64
			for i := 0; i < b.N; i++ {
				pol, err := core.NewFixedRate(300)
				if err != nil {
					b.Fatal(err)
				}
				sel, err := gc.NewSelectionPolicy(selName, 1)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(sim.Config{Policy: pol, Selection: sel})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				reclaimedMB = float64(res.TotalReclaimed) / (1 << 20)
			}
			b.ReportMetric(reclaimedMB, "reclaimed-MB")
		})
	}
}

// BenchmarkAblationPhysicalFixups compares collector I/O with logical-OID
// indirection (default) against physical pointer fixups.
func BenchmarkAblationPhysicalFixups(b *testing.B) {
	tr := getTrace(b, 3)
	for _, fixups := range []bool{false, true} {
		name := "logical-oids"
		if fixups {
			name = "physical-fixups"
		}
		b.Run(name, func(b *testing.B) {
			var gcioPerColl float64
			for i := 0; i < b.N; i++ {
				pol, err := core.NewFixedRate(300)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(sim.Config{Policy: pol, PhysicalFixups: fixups})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				if n := len(res.Collections); n > 0 {
					gcioPerColl = float64(res.Final.GCIO()) / float64(n)
				}
			}
			b.ReportMetric(gcioPerColl, "gcio/coll")
		})
	}
}

// BenchmarkAblationBufferSize revisits §3.1's buffer discussion: a buffer
// much smaller than a partition makes collection I/O-heavy; a much larger
// one hides the locality benefit. Reports total I/O.
func BenchmarkAblationBufferSize(b *testing.B) {
	tr := getTrace(b, 3)
	for _, pages := range []int{4, 12, 48} {
		b.Run(map[int]string{4: "third-partition", 12: "one-partition", 48: "four-partitions"}[pages], func(b *testing.B) {
			var totalIO float64
			for i := 0; i < b.N; i++ {
				pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
				if err != nil {
					b.Fatal(err)
				}
				cfg := storage.DefaultConfig()
				cfg.BufferPages = pages
				s, err := sim.New(sim.Config{Policy: pol, Storage: cfg})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				totalIO = float64(res.Final.TotalIO())
			}
			b.ReportMetric(totalIO, "total-io")
		})
	}
}

// BenchmarkAblationDeclusterBatch varies how aggressively Reorg2 interleaves
// reinsertions, measuring the impact on SAGA/FGS-HB accuracy.
func BenchmarkAblationDeclusterBatch(b *testing.B) {
	for _, batch := range []int{1, 10, 150} {
		b.Run(map[int]string{1: "clustered", 10: "batch10", 150: "global"}[batch], func(b *testing.B) {
			p := oo7.SmallPrime(3)
			p.DeclusterBatch = batch
			tr, err := oo7.FullTrace(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			var achieved float64
			for i := 0; i < b.N; i++ {
				est, err := core.NewFGSHB(0.8)
				if err != nil {
					b.Fatal(err)
				}
				pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(sim.Config{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				achieved = res.GarbageFrac * 100
			}
			b.ReportMetric(achieved, "garbage-pct")
		})
	}
}

// --- microbenchmarks of the substrates ---------------------------------------

// BenchmarkTraceGeneration measures OO7 trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := oo7.FullTrace(oo7.SmallPrime(3), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec measures binary encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	tr := getTrace(b, 3)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w bytes.Buffer
		if err := trace.WriteAll(&w, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadAll(bytes.NewReader(w.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput measures end-to-end request latency through the
// live serving stack — TCP framing, admission, engine service, response
// write — with the span flight recorder enabled, so bench-diff catches any
// tracing cost creeping into the hot path.
func BenchmarkServerThroughput(b *testing.B) {
	mgr, err := storage.NewManager(storage.Config{PageSize: 1024, PagesPerPartition: 4, BufferPages: 8})
	if err != nil {
		b.Fatal(err)
	}
	heap := gc.NewHeap(objstore.NewStore(), mgr)
	pol, err := core.NewFixedRate(200)
	if err != nil {
		b.Fatal(err)
	}
	live := obs.NewLive()
	m := server.NewMetrics(live.Registry())
	rec := span.NewRecorder(span.Config{})
	eng, err := server.NewEngine(heap, server.EngineConfig{
		Policy: pol, Selection: gc.UpdatedPointer{}, QueueDepth: 128,
		Metrics: m, Recorder: rec,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"}, eng, m)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		_ = srv.Serve(ctx, drain)
		close(finished)
	}()
	cli, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Do(ctx, server.Request{Op: server.OpPing})
		if err != nil || resp.Status != server.StatusOK {
			b.Fatalf("ping %d: status %q, err %v", i, resp.Status, err)
		}
	}
	b.StopTimer()
	_ = cli.Close()
	close(drain)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		b.Fatal("server did not drain")
	}
}

// BenchmarkSimulateSAIO measures a full simulation run under SAIO.
func BenchmarkSimulateSAIO(b *testing.B) {
	tr := getTrace(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Config{Policy: pol})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSAGA measures a full simulation run under SAGA/FGS-HB.
func BenchmarkSimulateSAGA(b *testing.B) {
	tr := getTrace(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			b.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sim.Config{Policy: pol})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures the durable store's per-mutation hot path:
// staging one pointer-update record and group-committing it. Fsync is
// deferred to checkpoints so the number tracks the encode-and-write cost
// the engine pays per acknowledged request, not the device sync latency.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	st, _, err := disk.Open(disk.Options{FS: disk.OSFS{Dir: dir}, Fsync: disk.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.LogAlloc(1, objstore.ClassAtomicPart, 128, 2); err != nil {
		b.Fatal(err)
	}
	if err := st.LogAlloc(2, objstore.ClassAtomicPart, 128, 2); err != nil {
		b.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.LogSet(1, i%2, 2); err != nil {
			b.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
